"""Runners regenerating every table and figure of the paper's evaluation.

Each runner is a pure function of an :class:`~repro.experiments.config.ExperimentScale`
(plus optional overrides) that generates the synthetic datasets, runs the
baseline and the cross-field compressor, and returns a structured result object
with a ``format()`` method printing the same rows/series the paper reports.
Absolute numbers differ from the paper (synthetic data, reduced resolution) —
the quantities to compare are the *relative* ones: who wins, by roughly what
factor, and where the trends cross over.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import CFNN, CFNNConfig, CrossFieldCompressor, HybridPredictor, TrainingConfig
from repro.core.anchors import get_anchor_spec
from repro.core.hybrid import build_candidate_predictions
from repro.data import make_dataset, take_slice
from repro.data.fields import FieldSet
from repro.data.slicing import zoom_window
from repro.experiments.config import (
    DATASET_DESCRIPTIONS,
    PAPER_DATASET_DIMS,
    PAPER_TABLE2_BASELINE,
    PAPER_TABLE2_OURS,
    PAPER_TABLE3_MODEL_SIZES,
    TABLE2_EXPERIMENTS,
    FieldExperiment,
    dataset_shapes,
    default_training_config,
    resolve_scale,
)
from repro.experiments.report import format_table
from repro.metrics import (
    RateDistortionCurve,
    cross_field_correlation_matrix,
    psnr,
    ssim,
)
from repro.pipeline import reconstruct_anchors
from repro.sz import ErrorBound, SZCompressor
from repro.sz.predictors import lorenzo_predict
from repro.sz.quantizer import prequantize
from repro.utils.logging import get_logger

logger = get_logger("experiments")

__all__ = [
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "Figure1Result",
    "Figure5Result",
    "Figure6Result",
    "Figure8Result",
    "Figure9Result",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_figure1",
    "run_figure5",
    "run_figure6",
    "run_figure8",
    "run_figure9",
    "prepare_experiment_fieldsets",
    "train_field_cfnn",
]


# --------------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------------- #
def prepare_experiment_fieldsets(
    scale: Optional[object] = None, seed: int = 0
) -> Dict[str, FieldSet]:
    """Generate the three synthetic datasets at the requested scale."""
    shapes = dataset_shapes(scale)
    return {
        name: make_dataset(name, shape=shape, seed=seed + i)
        for i, (name, shape) in enumerate(shapes.items())
    }


def train_field_cfnn(
    fieldset: FieldSet,
    dataset: str,
    target: str,
    training: Optional[TrainingConfig] = None,
    scale: Optional[object] = None,
) -> CFNN:
    """Train one CFNN for a target field on the *original* anchor fields.

    The paper trains on original (not decompressed) data so a single model is
    reused for every error bound of the same field (Section III-B); this helper
    is the runner-side equivalent.
    """
    spec = get_anchor_spec(dataset, target)
    spec.validate(fieldset)
    target_data = fieldset[target].data.astype(np.float64)
    anchors = [fieldset[name].data.astype(np.float64) for name in spec.anchors]
    ndim = target_data.ndim
    if training is None:
        training = default_training_config(ndim, scale)
    if ndim == 2:
        config = CFNNConfig(n_anchors=len(anchors), ndim=2, hidden_channels=8, expanded_channels=16)
    else:
        config = CFNNConfig(n_anchors=len(anchors), ndim=3, hidden_channels=8, expanded_channels=16)
    model = CFNN(config)
    model.train(anchors, target_data, training)
    return model


def _compress_pair(
    fieldset: FieldSet,
    dataset: str,
    target: str,
    error_bound: float,
    cfnn: CFNN,
    anchor_cache: Dict[Tuple[str, float, str], np.ndarray],
) -> Tuple[float, float, Dict]:
    """Compress one (field, error bound) cell with baseline and ours.

    Returns ``(baseline_ratio, ours_ratio, extras)``; anchor reconstructions at
    each error bound are cached (via :func:`repro.pipeline.reconstruct_anchors`)
    so several targets of the same dataset reuse them.
    """
    spec = get_anchor_spec(dataset, target)
    eb = ErrorBound.relative(error_bound)
    baseline = SZCompressor(error_bound=eb)

    decompressed_anchors = reconstruct_anchors(
        fieldset, spec.anchors, eb, cache=anchor_cache, cache_key=(dataset, error_bound)
    )

    target_data = fieldset[target].data
    baseline_result = baseline.compress(target_data, field_name=target)

    ours = CrossFieldCompressor(error_bound=eb)
    ours_result = ours.compress(target_data, decompressed_anchors, field_name=target, cfnn=cfnn)
    extras = {
        "baseline_bit_rate": baseline_result.bit_rate,
        "ours_bit_rate": ours_result.bit_rate,
        "hybrid_weights": ours_result.metadata["hybrid"]["weights"],
        "baseline_result": baseline_result,
        "ours_result": ours_result,
        "anchors": decompressed_anchors,
    }
    return baseline_result.ratio, ours_result.ratio, extras


# --------------------------------------------------------------------------- #
# Table I
# --------------------------------------------------------------------------- #
@dataclass
class Table1Result:
    """Dataset inventory (paper Table I) plus the grid actually used here."""

    rows: List[Dict] = field(default_factory=list)

    def format(self) -> str:
        """Paper-style table text."""
        return format_table(
            ["Name", "Paper dims", "Reproduction dims", "Fields", "Description"],
            [
                (
                    r["name"],
                    "x".join(str(d) for d in r["paper_dims"]),
                    "x".join(str(d) for d in r["repro_dims"]),
                    r["n_fields"],
                    r["description"],
                )
                for r in self.rows
            ],
        )


def run_table1(scale: Optional[object] = None) -> Table1Result:
    """Regenerate paper Table I: the evaluated datasets."""
    fieldsets = prepare_experiment_fieldsets(scale)
    result = Table1Result()
    for name, fieldset in fieldsets.items():
        result.rows.append(
            {
                "name": fieldset.name,
                "paper_dims": PAPER_DATASET_DIMS[name],
                "repro_dims": fieldset.shape,
                "n_fields": len(fieldset),
                "description": DATASET_DESCRIPTIONS[name],
            }
        )
    return result


# --------------------------------------------------------------------------- #
# Table II
# --------------------------------------------------------------------------- #
@dataclass
class Table2Result:
    """Compression-ratio comparison (paper Table II)."""

    rows: List[Dict] = field(default_factory=list)

    def format(self) -> str:
        """Paper-style table: one row per (field, error bound)."""
        return format_table(
            [
                "Dataset",
                "Field",
                "ErrBound",
                "Baseline",
                "Ours",
                "Improv%",
                "PaperBase",
                "PaperOurs",
                "PaperImpr%",
            ],
            [
                (
                    r["dataset"],
                    r["field"],
                    f"{r['error_bound']:.0e}",
                    r["baseline_ratio"],
                    r["ours_ratio"],
                    r["improvement_percent"],
                    r.get("paper_baseline", float("nan")),
                    r.get("paper_ours", float("nan")),
                    r.get("paper_improvement_percent", float("nan")),
                )
                for r in self.rows
            ],
        )

    def mean_improvement(self) -> float:
        """Average relative improvement over all cells (in percent)."""
        if not self.rows:
            raise ValueError("no rows")
        return float(np.mean([r["improvement_percent"] for r in self.rows]))

    def improvement_for(self, dataset: str, target: str, error_bound: float) -> float:
        """Improvement percentage of one cell."""
        for r in self.rows:
            if (
                r["dataset"] == dataset
                and r["field"] == target
                and np.isclose(r["error_bound"], error_bound)
            ):
                return float(r["improvement_percent"])
        raise KeyError(f"no cell for {dataset}:{target}@{error_bound}")


def run_table2(
    scale: Optional[object] = None,
    experiments: Optional[Sequence[FieldExperiment]] = None,
    error_bounds: Optional[Sequence[float]] = None,
    training: Optional[TrainingConfig] = None,
    seed: int = 0,
) -> Table2Result:
    """Regenerate paper Table II: baseline vs cross-field compression ratios.

    One CFNN is trained per target field (on original anchors) and reused for
    every error bound of that field, exactly as the paper does.
    """
    scale = resolve_scale(scale)
    if experiments is None:
        experiments = TABLE2_EXPERIMENTS
    fieldsets = prepare_experiment_fieldsets(scale, seed=seed)
    anchor_cache: Dict[Tuple[str, float, str], np.ndarray] = {}
    result = Table2Result()

    for experiment in experiments:
        fieldset = fieldsets[experiment.dataset]
        bounds = tuple(error_bounds) if error_bounds is not None else experiment.error_bounds
        cfnn = train_field_cfnn(fieldset, experiment.dataset, experiment.target, training, scale)
        for eb in bounds:
            start = time.perf_counter()
            base_ratio, ours_ratio, extras = _compress_pair(
                fieldset, experiment.dataset, experiment.target, eb, cfnn, anchor_cache
            )
            elapsed = time.perf_counter() - start
            row = {
                "dataset": experiment.dataset,
                "field": experiment.target,
                "error_bound": eb,
                "baseline_ratio": base_ratio,
                "ours_ratio": ours_ratio,
                "improvement_percent": 100.0 * (ours_ratio / base_ratio - 1.0),
                "baseline_bit_rate": extras["baseline_bit_rate"],
                "ours_bit_rate": extras["ours_bit_rate"],
                "hybrid_weights": extras["hybrid_weights"],
                "seconds": elapsed,
            }
            paper_base = PAPER_TABLE2_BASELINE.get(experiment.key, {}).get(eb)
            paper_ours = PAPER_TABLE2_OURS.get(experiment.key, {}).get(eb)
            if paper_base is not None and paper_ours is not None:
                row["paper_baseline"] = paper_base
                row["paper_ours"] = paper_ours
                row["paper_improvement_percent"] = 100.0 * (paper_ours / paper_base - 1.0)
            result.rows.append(row)
            logger.info(
                "table2 %s:%s eb=%g baseline=%.2f ours=%.2f (%.1f%%)",
                experiment.dataset,
                experiment.target,
                eb,
                base_ratio,
                ours_ratio,
                row["improvement_percent"],
            )
    return result


# --------------------------------------------------------------------------- #
# Table III
# --------------------------------------------------------------------------- #
@dataclass
class Table3Result:
    """Experiment configuration and model sizes (paper Table III)."""

    rows: List[Dict] = field(default_factory=list)

    def format(self) -> str:
        """Paper-style table."""
        return format_table(
            ["Dataset", "Target", "Anchors", "CFNN params", "Hybrid params", "Paper CFNN", "Paper hybrid"],
            [
                (
                    r["dataset"],
                    r["target"],
                    ",".join(r["anchors"]),
                    r["cfnn_parameters"],
                    r["hybrid_parameters"],
                    r["paper_cfnn_parameters"],
                    r["paper_hybrid_parameters"],
                )
                for r in self.rows
            ],
        )


def run_table3(scale: Optional[object] = None) -> Table3Result:
    """Regenerate paper Table III: anchors and model sizes per target field."""
    shapes = dataset_shapes(scale)
    result = Table3Result()
    for experiment in TABLE2_EXPERIMENTS:
        spec = get_anchor_spec(experiment.dataset, experiment.target)
        ndim = len(shapes[experiment.dataset])
        if ndim == 2:
            config = CFNNConfig(n_anchors=len(spec.anchors), ndim=2, hidden_channels=8, expanded_channels=16)
        else:
            config = CFNNConfig(n_anchors=len(spec.anchors), ndim=3, hidden_channels=8, expanded_channels=16)
        model = CFNN(config)
        paper = PAPER_TABLE3_MODEL_SIZES[experiment.key]
        result.rows.append(
            {
                "dataset": experiment.dataset,
                "target": experiment.target,
                "anchors": spec.anchors,
                "cfnn_parameters": model.num_parameters,
                "hybrid_parameters": ndim + 1,
                "paper_cfnn_parameters": paper["cfnn"],
                "paper_hybrid_parameters": paper["hybrid"],
                "model_bytes_float32": model.num_parameters * 4,
            }
        )
    return result


# --------------------------------------------------------------------------- #
# Figure 1
# --------------------------------------------------------------------------- #
@dataclass
class Figure1Result:
    """Cross-field correlation of the U/V/W SCALE slice (paper Figure 1)."""

    slice_index: int
    pearson: Dict[str, Dict[str, float]] = field(default_factory=dict)
    mutual_information: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format(self) -> str:
        """Correlation matrices as text tables."""
        names = list(self.pearson.keys())
        lines = [f"slice index: {self.slice_index}", "Pearson correlation:"]
        lines.append(
            format_table(
                ["field"] + names,
                [(a, *[self.pearson[a][b] for b in names]) for a in names],
            )
        )
        lines.append("Mutual information (bits):")
        lines.append(
            format_table(
                ["field"] + names,
                [(a, *[self.mutual_information[a][b] for b in names]) for a in names],
            )
        )
        return "\n".join(lines)


def run_figure1(scale: Optional[object] = None, fields: Sequence[str] = ("U", "V", "W")) -> Figure1Result:
    """Quantify the cross-field correlation the paper visualises in Figure 1."""
    shapes = dataset_shapes(scale)
    fieldset = make_dataset("scale", shape=shapes["scale"])
    # paper uses the 49th slice of a 98-level volume: use the middle slice here
    slice_index = min(fieldset.shape[0] - 1, fieldset.shape[0] // 2)
    sliced = FieldSet.from_dict(
        {name: take_slice(fieldset[name].data, axis=0, index=slice_index) for name in fields},
        name="scale-slice",
    )
    return Figure1Result(
        slice_index=slice_index,
        pearson=cross_field_correlation_matrix(sliced, method="pearson"),
        mutual_information=cross_field_correlation_matrix(sliced, method="mutual_information"),
    )


# --------------------------------------------------------------------------- #
# Figure 5
# --------------------------------------------------------------------------- #
@dataclass
class Figure5Result:
    """Training loss curves for the CFNN and the hybrid model (paper Figure 5)."""

    cfnn_loss: List[float] = field(default_factory=list)
    hybrid_loss: List[float] = field(default_factory=list)
    error_bound: float = 1e-3

    def format(self) -> str:
        """Two loss series, one per line prefix."""
        lines = [f"# relative error bound {self.error_bound:g}", "# CFNN training loss"]
        lines += [f"cfnn {i + 1} {v:.6f}" for i, v in enumerate(self.cfnn_loss)]
        lines.append("# hybrid prediction model training loss")
        lines += [f"hybrid {i + 1} {v:.6f}" for i, v in enumerate(self.hybrid_loss)]
        return "\n".join(lines)

    def cfnn_decreased(self) -> bool:
        """Whether the CFNN loss decreased over training (the paper's observation)."""
        return len(self.cfnn_loss) >= 2 and self.cfnn_loss[-1] < self.cfnn_loss[0]

    def hybrid_decreased(self) -> bool:
        """Whether the hybrid-model loss decreased over training."""
        return len(self.hybrid_loss) >= 2 and self.hybrid_loss[-1] <= self.hybrid_loss[0]


def run_figure5(
    scale: Optional[object] = None,
    dataset: str = "hurricane",
    target: str = "Wf",
    error_bound: float = 1e-3,
    training: Optional[TrainingConfig] = None,
    hybrid_epochs: int = 20,
) -> Figure5Result:
    """Regenerate paper Figure 5: training loss vs epoch for both models."""
    shapes = dataset_shapes(scale)
    fieldset = make_dataset(dataset, shape=shapes[dataset])
    spec = get_anchor_spec(dataset, target)
    anchors = [fieldset[name].data.astype(np.float64) for name in spec.anchors]
    target_data = fieldset[target].data.astype(np.float64)

    if training is None:
        training = default_training_config(target_data.ndim, scale)
    cfnn = CFNN(
        CFNNConfig(
            n_anchors=len(anchors),
            ndim=target_data.ndim,
            hidden_channels=8,
            expanded_channels=16,
        )
    )
    history = cfnn.train(anchors, target_data, training)

    # hybrid model trained iteratively (SGD) to obtain a loss curve
    abs_eb = ErrorBound.relative(error_bound).resolve(target_data)
    codes = prequantize(target_data, abs_eb)
    predicted_diffs = cfnn.predict_differences(anchors)
    diff_codes = [np.rint(d / (2.0 * abs_eb)).astype(np.int64) for d in predicted_diffs]
    hybrid = HybridPredictor(ndim=target_data.ndim)
    hybrid.fit(codes, diff_codes, method="sgd", epochs=hybrid_epochs)

    return Figure5Result(
        cfnn_loss=list(history.train_loss),
        hybrid_loss=list(hybrid.loss_history),
        error_bound=error_bound,
    )


# --------------------------------------------------------------------------- #
# Figure 6 (and the Figure 7 zoom)
# --------------------------------------------------------------------------- #
@dataclass
class Figure6Result:
    """Prediction-accuracy comparison of cross-field / Lorenzo / hybrid (Figures 6-7)."""

    slice_axis: int
    slice_index: int
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    zoom_metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format(self) -> str:
        """PSNR/SSIM of each predictor on the full slice and the zoom window."""
        rows = [
            (name, values["psnr"], values["ssim"], self.zoom_metrics[name]["psnr"], self.zoom_metrics[name]["ssim"])
            for name, values in self.metrics.items()
        ]
        return format_table(
            ["Predictor", "PSNR(dB)", "SSIM", "Zoom PSNR(dB)", "Zoom SSIM"], rows
        )

    def best_predictor(self) -> str:
        """Predictor with the highest full-slice PSNR."""
        return max(self.metrics.items(), key=lambda kv: kv[1]["psnr"])[0]


def run_figure6(
    scale: Optional[object] = None,
    dataset: str = "hurricane",
    target: str = "Wf",
    training: Optional[TrainingConfig] = None,
    zoom_size: int = 50,
) -> Figure6Result:
    """Regenerate paper Figures 6-7: prediction accuracy of the three predictors.

    Every point is predicted from its true neighbours (no error-bound feedback),
    which isolates raw prediction quality — exactly what determines the residual
    entropy and therefore the compression ratio.
    """
    shapes = dataset_shapes(scale)
    fieldset = make_dataset(dataset, shape=shapes[dataset])
    spec = get_anchor_spec(dataset, target)
    anchors = [fieldset[name].data.astype(np.float64) for name in spec.anchors]
    target_data = fieldset[target].data.astype(np.float64)
    ndim = target_data.ndim

    cfnn = train_field_cfnn(fieldset, dataset, target, training, scale)
    predicted_diffs = cfnn.predict_differences(anchors)

    # fine integer lattice so quantization does not mask prediction differences
    abs_eb = ErrorBound.relative(1e-4).resolve(target_data)
    codes = prequantize(target_data, abs_eb)
    diff_codes = [np.rint(d / (2.0 * abs_eb)).astype(np.int64) for d in predicted_diffs]

    candidates = build_candidate_predictions(codes, diff_codes)
    lorenzo_pred = candidates[0] * (2.0 * abs_eb)
    cross_pred = np.mean(candidates[1:], axis=0) * (2.0 * abs_eb)
    hybrid = HybridPredictor(ndim=ndim)
    hybrid.fit(codes, diff_codes)
    hybrid_pred = hybrid.predict(codes, diff_codes) * (2.0 * abs_eb)

    if ndim == 3:
        # the paper slices the Hurricane volume along the second dimension
        slice_axis = 1
        slice_index = target_data.shape[slice_axis] // 2
        original_slice = take_slice(target_data, slice_axis, slice_index)
    else:
        # 2D fields are already a single slice
        slice_axis = -1
        slice_index = 0
        original_slice = np.asarray(target_data, dtype=np.float64)
    zoom_center = (original_slice.shape[0] // 2, original_slice.shape[1] // 2)
    zoom_size = min(zoom_size, *original_slice.shape)

    metrics: Dict[str, Dict[str, float]] = {}
    zoom_metrics: Dict[str, Dict[str, float]] = {}
    for name, prediction in (
        ("cross_field", cross_pred),
        ("lorenzo", lorenzo_pred),
        ("hybrid", hybrid_pred),
    ):
        predicted_slice = (
            take_slice(prediction, slice_axis, slice_index) if ndim == 3 else np.asarray(prediction, dtype=np.float64)
        )
        metrics[name] = {
            "psnr": psnr(original_slice, predicted_slice),
            "ssim": ssim(original_slice, predicted_slice),
        }
        zoom_metrics[name] = {
            "psnr": psnr(
                zoom_window(original_slice, zoom_center, zoom_size),
                zoom_window(predicted_slice, zoom_center, zoom_size),
            ),
            "ssim": ssim(
                zoom_window(original_slice, zoom_center, zoom_size),
                zoom_window(predicted_slice, zoom_center, zoom_size),
            ),
        }
    return Figure6Result(
        slice_axis=slice_axis,
        slice_index=slice_index,
        metrics=metrics,
        zoom_metrics=zoom_metrics,
    )


# --------------------------------------------------------------------------- #
# Figure 8
# --------------------------------------------------------------------------- #
@dataclass
class Figure8Result:
    """Rate-distortion curves, baseline vs ours, per field (paper Figure 8)."""

    curves: Dict[str, Dict[str, RateDistortionCurve]] = field(default_factory=dict)

    def format(self) -> str:
        """All curves as ``bit_rate psnr`` series."""
        sections = []
        for key, pair in self.curves.items():
            sections.append(pair["baseline"].format())
            sections.append(pair["ours"].format())
        return "\n".join(sections)

    def psnr_gain(self, key: str) -> float:
        """Average PSNR gain of ours over the baseline for one field."""
        pair = self.curves[key]
        return pair["ours"].average_psnr_gain_over(pair["baseline"])


def run_figure8(
    scale: Optional[object] = None,
    experiments: Optional[Sequence[FieldExperiment]] = None,
    error_bounds: Optional[Sequence[float]] = None,
    training: Optional[TrainingConfig] = None,
    seed: int = 0,
) -> Figure8Result:
    """Regenerate paper Figure 8: PSNR vs bit-rate for baseline and ours."""
    scale = resolve_scale(scale)
    if experiments is None:
        experiments = TABLE2_EXPERIMENTS
    fieldsets = prepare_experiment_fieldsets(scale, seed=seed)
    anchor_cache: Dict[Tuple[str, float, str], np.ndarray] = {}
    result = Figure8Result()

    for experiment in experiments:
        fieldset = fieldsets[experiment.dataset]
        bounds = tuple(error_bounds) if error_bounds is not None else experiment.error_bounds
        cfnn = train_field_cfnn(fieldset, experiment.dataset, experiment.target, training, scale)
        baseline_curve = RateDistortionCurve(label=f"{experiment.key} baseline")
        ours_curve = RateDistortionCurve(label=f"{experiment.key} ours")
        target_data = fieldset[experiment.target].data
        for eb in bounds:
            _, _, extras = _compress_pair(
                fieldset, experiment.dataset, experiment.target, eb, cfnn, anchor_cache
            )
            baseline_result = extras["baseline_result"]
            ours_result = extras["ours_result"]
            baseline_recon = SZCompressor(error_bound=ErrorBound.relative(eb)).decompress(
                baseline_result.payload
            )
            ours_recon = CrossFieldCompressor(error_bound=ErrorBound.relative(eb)).decompress(
                ours_result.payload, extras["anchors"]
            )
            baseline_curve.add_measurement(
                baseline_result.bit_rate,
                psnr(target_data, baseline_recon),
                error_bound=eb,
                compression_ratio=baseline_result.ratio,
                ssim=ssim(target_data, baseline_recon),
            )
            ours_curve.add_measurement(
                ours_result.bit_rate,
                psnr(target_data, ours_recon),
                error_bound=eb,
                compression_ratio=ours_result.ratio,
                ssim=ssim(target_data, ours_recon),
            )
        result.curves[experiment.key] = {"baseline": baseline_curve, "ours": ours_curve}
    return result


# --------------------------------------------------------------------------- #
# Figure 9
# --------------------------------------------------------------------------- #
@dataclass
class Figure9Result:
    """Matched-compression-ratio quality comparison (paper Figure 9)."""

    target_ratio: float
    baseline: Dict[str, float] = field(default_factory=dict)
    ours: Dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        """PSNR/SSIM of both methods at the matched ratio (full field and zoom)."""
        return format_table(
            ["Method", "Achieved ratio", "PSNR(dB)", "SSIM", "Zoom PSNR(dB)", "Zoom SSIM"],
            [
                (
                    "baseline",
                    self.baseline["ratio"],
                    self.baseline["psnr"],
                    self.baseline["ssim"],
                    self.baseline["zoom_psnr"],
                    self.baseline["zoom_ssim"],
                ),
                (
                    "ours",
                    self.ours["ratio"],
                    self.ours["psnr"],
                    self.ours["ssim"],
                    self.ours["zoom_psnr"],
                    self.ours["zoom_ssim"],
                ),
            ],
        )

    def ours_wins(self) -> bool:
        """Whether ours has higher PSNR at the matched compression ratio."""
        return self.ours["psnr"] >= self.baseline["psnr"]


def _match_ratio(compress, decompress, data, target_ratio, bounds=(5e-5, 2e-2), iterations=8):
    """Bisection on the relative error bound until the achieved ratio matches."""
    lo, hi = bounds
    best = None
    for _ in range(iterations):
        mid = float(np.sqrt(lo * hi))
        result = compress(mid)
        ratio = result.ratio
        recon = decompress(mid, result)
        best = (mid, result, recon, ratio)
        if ratio > target_ratio:
            hi = mid
        else:
            lo = mid
        if abs(ratio - target_ratio) / target_ratio < 0.05:
            break
    return best


def run_figure9(
    scale: Optional[object] = None,
    dataset: str = "cesm",
    target: str = "CLDTOT",
    target_ratio: Optional[float] = None,
    training: Optional[TrainingConfig] = None,
    zoom_size: int = 50,
) -> Figure9Result:
    """Regenerate paper Figure 9: distortion at a matched compression ratio.

    The paper compares both methods at a fixed 17x ratio; here the target ratio
    defaults to whatever the baseline achieves at the 1e-3 relative bound, so
    the comparison stays meaningful at reduced resolution.
    """
    shapes = dataset_shapes(scale)
    fieldset = make_dataset(dataset, shape=shapes[dataset])
    spec = get_anchor_spec(dataset, target)
    target_data = fieldset[target].data
    cfnn = train_field_cfnn(fieldset, dataset, target, training, scale)

    baseline_at_ref = SZCompressor(error_bound=ErrorBound.relative(1e-3)).compress(target_data)
    if target_ratio is None:
        target_ratio = baseline_at_ref.ratio

    anchors = reconstruct_anchors(fieldset, spec.anchors, ErrorBound.relative(1e-3))

    def compress_baseline(eb):
        return SZCompressor(error_bound=ErrorBound.relative(eb)).compress(target_data)

    def decompress_baseline(eb, result):
        return SZCompressor(error_bound=ErrorBound.relative(eb)).decompress(result.payload)

    def compress_ours(eb):
        return CrossFieldCompressor(error_bound=ErrorBound.relative(eb)).compress(
            target_data, anchors, cfnn=cfnn
        )

    def decompress_ours(eb, result):
        return CrossFieldCompressor(error_bound=ErrorBound.relative(eb)).decompress(
            result.payload, anchors
        )

    zoom_center = (target_data.shape[-2] // 2, target_data.shape[-1] // 2)
    zoom_size = min(zoom_size, *target_data.shape[-2:])

    def score(recon, ratio):
        original_2d = target_data if target_data.ndim == 2 else target_data[target_data.shape[0] // 2]
        recon_2d = recon if recon.ndim == 2 else recon[recon.shape[0] // 2]
        return {
            "ratio": float(ratio),
            "psnr": psnr(target_data, recon),
            "ssim": ssim(target_data, recon),
            "zoom_psnr": psnr(
                zoom_window(np.asarray(original_2d, dtype=np.float64), zoom_center, zoom_size),
                zoom_window(np.asarray(recon_2d, dtype=np.float64), zoom_center, zoom_size),
            ),
            "zoom_ssim": ssim(
                zoom_window(np.asarray(original_2d, dtype=np.float64), zoom_center, zoom_size),
                zoom_window(np.asarray(recon_2d, dtype=np.float64), zoom_center, zoom_size),
            ),
        }

    _, base_result, base_recon, base_ratio = _match_ratio(
        compress_baseline, decompress_baseline, target_data, target_ratio
    )
    _, ours_result, ours_recon, ours_ratio = _match_ratio(
        compress_ours, decompress_ours, target_data, target_ratio
    )
    return Figure9Result(
        target_ratio=float(target_ratio),
        baseline=score(base_recon, base_ratio),
        ours=score(ours_recon, ours_ratio),
    )
