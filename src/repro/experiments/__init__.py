"""Experiment harness: one runner per table/figure of the paper's evaluation.

Every runner returns a plain-data result object that the benchmark suite (and
the examples) can print in the same layout the paper reports, so the
reproduction can be compared side by side with the published numbers.  The
mapping from paper artefact to runner is:

========  =====================================================
Artefact  Runner
========  =====================================================
Table I   :func:`repro.experiments.runners.run_table1`
Table II  :func:`repro.experiments.runners.run_table2`
Table III :func:`repro.experiments.runners.run_table3`
Figure 1  :func:`repro.experiments.runners.run_figure1`
Figure 5  :func:`repro.experiments.runners.run_figure5`
Figure 6  :func:`repro.experiments.runners.run_figure6` (also covers Figure 7)
Figure 8  :func:`repro.experiments.runners.run_figure8`
Figure 9  :func:`repro.experiments.runners.run_figure9`
ablation  :mod:`repro.experiments.ablations`
========  =====================================================
"""

from repro.experiments.config import (
    ExperimentScale,
    FieldExperiment,
    TABLE2_EXPERIMENTS,
    TABLE2_ERROR_BOUNDS,
    dataset_shapes,
    default_training_config,
)
from repro.experiments.runners import (
    run_table1,
    run_table2,
    run_table3,
    run_figure1,
    run_figure5,
    run_figure6,
    run_figure8,
    run_figure9,
)
from repro.experiments.ablations import (
    run_dual_quant_ablation,
    run_predictor_ablation,
    run_entropy_backend_ablation,
    run_parallel_block_ablation,
    run_anchor_selection_ablation,
)
from repro.experiments.report import format_table, format_markdown_table

__all__ = [
    "ExperimentScale",
    "FieldExperiment",
    "TABLE2_EXPERIMENTS",
    "TABLE2_ERROR_BOUNDS",
    "dataset_shapes",
    "default_training_config",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_figure1",
    "run_figure5",
    "run_figure6",
    "run_figure8",
    "run_figure9",
    "run_dual_quant_ablation",
    "run_predictor_ablation",
    "run_entropy_backend_ablation",
    "run_parallel_block_ablation",
    "run_anchor_selection_ablation",
    "format_table",
    "format_markdown_table",
]
