"""Plain-text and Markdown table rendering for experiment results.

The benchmark harness prints results in the same row/column layout the paper
uses so that reproduction and publication can be compared line by line.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_markdown_table"]


def _stringify(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned plain-text table."""
    headers = [str(h) for h in headers]
    string_rows: List[List[str]] = [[_stringify(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in string_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a GitHub-flavoured Markdown table."""
    headers = [str(h) for h in headers]
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        lines.append("| " + " | ".join(_stringify(v) for v in row) + " |")
    return "\n".join(lines)
