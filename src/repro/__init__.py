"""repro: cross-field enhanced error-bounded lossy compression for scientific data.

Reproduction of "Enhancing Lossy Compression Through Cross-Field Information for
Scientific Applications" (SC 2024).  The package provides:

- :mod:`repro.sz` — an SZ3-style prediction-based error-bounded compressor
  (Lorenzo / regression / interpolation predictors, dual quantization, Huffman
  and lossless entropy stages) used as the baseline.
- :mod:`repro.core` — the paper's contribution: the cross-field neural network
  (CFNN), the hybrid prediction model, and the cross-field compressor that
  plugs them into the SZ pipeline.
- :mod:`repro.nn` — a pure-NumPy neural network substrate (convolutions,
  depthwise-separable convolutions, channel attention, Adam, training loop).
- :mod:`repro.data` — field containers, finite differences, SDRBench IO and
  synthetic multi-field datasets emulating SCALE-LETKF, CESM-ATM and Hurricane.
- :mod:`repro.metrics` — PSNR, SSIM, compression ratio, rate-distortion curves
  and cross-field correlation measures.
- :mod:`repro.parallel` — block-parallel compression enabled by dual quantization.
- :mod:`repro.zfp` — a ZFP-style transform-based compressor for ablations.
- :mod:`repro.store` — a chunked random-access archive store (``XFA1``) with a
  codec registry over all compressors and the ``repro`` command line interface.
- :mod:`repro.pipeline` — the config-driven end-to-end pipeline unifying all of
  the above: :class:`~repro.pipeline.config.PipelineConfig` (JSON round-trip),
  :class:`~repro.pipeline.pipeline.CompressionPipeline`, and the scenario
  registry behind ``repro run``.
- :mod:`repro.experiments` — runners that regenerate every table and figure of
  the paper's evaluation section.

The ``docs/`` tree documents the architecture (``docs/architecture.md``), the
pipeline and its configuration schema (``docs/pipeline.md``), and the on-disk
archive format (``docs/xfa1-format.md``).

Quickstart
----------
>>> from repro.data import make_dataset
>>> from repro.core import CrossFieldCompressor
>>> from repro.sz import SZCompressor, ErrorBound
>>> ds = make_dataset("hurricane", shape=(16, 48, 48))
>>> baseline = SZCompressor(error_bound=ErrorBound.relative(1e-3))
>>> result = baseline.compress(ds["Wf"].data)
>>> round(result.ratio, 1) > 1.0
True
"""

from repro._version import __version__

__all__ = ["__version__"]
