"""Config-driven end-to-end compression pipeline.

This package is the high-level API over the rest of the system: one validated,
JSON-round-trippable configuration object drives the core compressors
(:mod:`repro.sz`, :mod:`repro.zfp`, :mod:`repro.core` via the store codec
registry), block-parallel execution (:mod:`repro.parallel`), and the chunked
``XFA1`` archive store (:mod:`repro.store`), so every workload — baseline,
mixed-codec, cross-field, lossless — is expressed as data instead of ad-hoc
scripts.

- :mod:`repro.pipeline.config` — :class:`PipelineConfig` / :class:`FieldRule`:
  strict parsing, validation, JSON round-trip.
- :mod:`repro.pipeline.pipeline` — :class:`CompressionPipeline` with
  ``compress`` / ``decompress`` / ``verify`` over XFA1 archives, plus the
  :func:`reconstruct_anchors` helper shared with the experiment runners.
- :mod:`repro.pipeline.scenarios` — the scenario registry mapping named
  workloads (``climate-small``, ``cross-field``, ``random-access``, …) to
  synthetic data + config presets; drives ``repro run``.

See ``docs/pipeline.md`` for the configuration reference and CLI usage.
"""

from repro.pipeline.config import FieldRule, PipelineConfig, PipelineConfigError
from repro.pipeline.pipeline import (
    CompressionPipeline,
    FieldReport,
    PipelineResult,
    reconstruct_anchors,
)
from repro.pipeline.scenarios import (
    Scenario,
    available_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_table,
)

__all__ = [
    "PipelineConfig",
    "FieldRule",
    "PipelineConfigError",
    "CompressionPipeline",
    "PipelineResult",
    "FieldReport",
    "reconstruct_anchors",
    "Scenario",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "scenario_table",
    "run_scenario",
]
