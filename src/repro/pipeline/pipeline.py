"""Config-driven end-to-end compression pipeline over the XFA1 archive store.

:class:`CompressionPipeline` is the one high-level entry point that ties the
repo's layers together: it takes a :class:`~repro.pipeline.config.PipelineConfig`
(default codec, error bound, chunk grid, per-field rules) and a
:class:`~repro.data.fields.FieldSet`, compresses every field chunk-by-chunk in
parallel through the store's codec registry (:mod:`repro.store.codecs` — the
SZ baseline, the ZFP-like coder, the paper's cross-field compressor, the exact
lossless codec), and writes the result as one random-access ``XFA1`` archive.
Decompression is the inverse: any subset of fields (or regions, through
:class:`~repro.store.reader.ArchiveReader`) comes back without re-reading the
configuration — the archive manifest is self-describing.

The pipeline records its own configuration JSON in the archive attributes
(``pipeline_config``), so every archive documents how it was produced.

:func:`reconstruct_anchors` is the shared in-memory helper for cross-field
workflows that do *not* go through an archive (the experiment runners, the
quickstart example): it compresses and decompresses anchor fields with the SZ
baseline so predictor inputs match what a decompressor will see.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.fields import Field, FieldSet
from repro.obs import recorder as _obs
from repro.pipeline.config import FieldRule, PipelineConfig, PipelineConfigError
from repro.store.manifest import FieldEntry
from repro.store.reader import ArchiveReader
from repro.store.writer import ArchiveWriter
from repro.sz.errors import ErrorBound

__all__ = [
    "CompressionPipeline",
    "FieldReport",
    "PipelineResult",
    "reconstruct_anchors",
]

PathLike = Union[str, os.PathLike]


def _human_ratio(value: float) -> str:
    return "inf" if value == float("inf") else f"{value:.2f}x"


@dataclass
class FieldReport:
    """Per-field outcome of one pipeline compression."""

    name: str
    codec: str
    shape: Tuple[int, ...]
    original_nbytes: int
    compressed_nbytes: int
    anchors: Tuple[str, ...] = ()

    @property
    def ratio(self) -> float:
        """Compression ratio of this field (manifest overhead excluded)."""
        if self.compressed_nbytes == 0:
            return float("inf")
        return self.original_nbytes / self.compressed_nbytes

    @classmethod
    def from_entry(cls, entry: FieldEntry) -> "FieldReport":
        """Summarise an archive manifest entry."""
        return cls(
            name=entry.name,
            codec=entry.codec,
            shape=entry.shape,
            original_nbytes=entry.original_nbytes,
            compressed_nbytes=entry.compressed_nbytes,
            anchors=entry.anchors,
        )


@dataclass
class PipelineResult:
    """Outcome of :meth:`CompressionPipeline.compress` (and ``repro run``)."""

    archive: Path
    fields: List[FieldReport] = field(default_factory=list)
    seconds: float = 0.0
    verify_report: Optional[Dict] = None
    extras: Dict = field(default_factory=dict)

    @property
    def original_nbytes(self) -> int:
        """Total uncompressed bytes across all fields."""
        return sum(f.original_nbytes for f in self.fields)

    @property
    def compressed_nbytes(self) -> int:
        """Total compressed payload bytes across all fields."""
        return sum(f.compressed_nbytes for f in self.fields)

    @property
    def ratio(self) -> float:
        """Aggregate compression ratio."""
        compressed = self.compressed_nbytes
        if compressed == 0:
            return float("inf")
        return self.original_nbytes / compressed

    @property
    def verified_ok(self) -> Optional[bool]:
        """Verification verdict (``None`` when verification was not run)."""
        if self.verify_report is None:
            return None
        return bool(self.verify_report.get("ok"))

    def format(self) -> str:
        """Human-readable per-field summary table."""
        lines = [
            f"{'field':<12} {'codec':<12} {'shape':<16} {'ratio':>8}  anchors",
        ]
        for report in self.fields:
            anchors = ",".join(report.anchors) if report.anchors else "-"
            lines.append(
                f"{report.name:<12} {report.codec:<12} "
                f"{'x'.join(map(str, report.shape)):<16} "
                f"{_human_ratio(report.ratio):>8}  {anchors}"
            )
        lines.append(
            f"total: {self.original_nbytes} -> {self.compressed_nbytes} bytes "
            f"({_human_ratio(self.ratio)}) in {self.seconds:.2f}s -> {self.archive}"
        )
        if self.verify_report is not None:
            lines.append(f"verification: {'ok' if self.verified_ok else 'FAILED'}")
        return "\n".join(lines)


class CompressionPipeline:
    """End-to-end, config-driven compression of named field sets.

    Parameters
    ----------
    config:
        A :class:`~repro.pipeline.config.PipelineConfig`; it is validated on
        construction so misconfigurations fail before any compression work.

    Examples
    --------
    >>> from repro.data import make_dataset  # doctest: +SKIP
    >>> from repro.pipeline import CompressionPipeline, PipelineConfig  # doctest: +SKIP
    >>> pipeline = CompressionPipeline(PipelineConfig(codec="sz"))  # doctest: +SKIP
    >>> result = pipeline.compress(make_dataset("cesm"), "snapshot.xfa")  # doctest: +SKIP
    >>> restored = pipeline.decompress("snapshot.xfa")  # doctest: +SKIP
    """

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = (config if config is not None else PipelineConfig()).validate()

    # ------------------------------------------------------------------ #
    # compression
    # ------------------------------------------------------------------ #
    def _ordered_names(self, fieldset: FieldSet, names: Sequence[str]) -> List[str]:
        """Write order: plain fields first, anchored targets after their anchors."""
        plain: List[str] = []
        anchored: List[str] = []
        selected = set(names)
        for name in names:
            rule = self.config.rule_for(name)
            if rule.anchors:
                for anchor in rule.anchors:
                    if anchor not in fieldset:
                        raise PipelineConfigError(
                            f"field {name!r}: anchor {anchor!r} is not in the field set "
                            f"(available: {fieldset.names})"
                        )
                    if anchor not in selected:
                        raise PipelineConfigError(
                            f"field {name!r}: anchor {anchor!r} is not part of the "
                            "compressed selection; anchors must be stored in the same archive"
                        )
                anchored.append(name)
            else:
                plain.append(name)
        return plain + anchored

    def compress(
        self,
        fieldset: FieldSet,
        path: PathLike,
        fields: Optional[Sequence[str]] = None,
    ) -> PipelineResult:
        """Compress ``fieldset`` into one XFA1 archive at ``path``.

        ``fields`` selects a subset (default: every field).  Fields with
        anchored rules are written after their anchors, which the archive
        writer requires; the effective configuration is stored in the archive
        attributes under ``"pipeline_config"``.
        """
        config = self.config
        names = list(fields) if fields is not None else fieldset.names
        for name in names:
            if name not in fieldset:
                raise PipelineConfigError(
                    f"field {name!r} is not in the field set (available: {fieldset.names})"
                )
        ordered = self._ordered_names(fieldset, names)
        attrs = dict(config.attrs)
        attrs.setdefault("dataset", fieldset.name)
        attrs["pipeline"] = config.name
        attrs["pipeline_config"] = config.to_dict()

        start = time.perf_counter()
        with ArchiveWriter(
            path,
            codec=config.codec,
            error_bound=config.error_bound,
            chunk_shape=config.chunk_shape,
            max_workers=config.effective_jobs,
            executor_kind=config.executor_kind,
            attrs=attrs,
        ) as writer:
            entries: List[FieldEntry] = []
            for name in ordered:
                rule = config.rule_for(name)
                with _obs.span(
                    "pipeline.compress.field_seconds",
                    field=name,
                    codec=config.codec_for(name),
                ):
                    entries.append(
                        writer.add_field(
                            name,
                            fieldset[name].data,
                            codec=config.codec_for(name),
                            error_bound=config.error_bound_for(name),
                            chunk_shape=rule.chunk_shape,
                            anchors=rule.anchors,
                            **rule.codec_params,
                        )
                    )
        seconds = time.perf_counter() - start
        return PipelineResult(
            archive=Path(path),
            fields=[FieldReport.from_entry(entry) for entry in entries],
            seconds=seconds,
        )

    # ------------------------------------------------------------------ #
    # time-stepped streaming
    # ------------------------------------------------------------------ #
    def _step_rules(self, fieldset: FieldSet) -> Tuple[Dict, Dict]:
        """Per-field writer rules and temporal specs for one timestep."""
        config = self.config
        field_rules: Dict = {}
        temporal: Dict = {}
        for name in fieldset.names:
            rule = config.rule_for(name)
            if rule.anchors:
                raise PipelineConfigError(
                    f"field {name!r}: cross-field rules are not supported in "
                    "time-stepped runs (anchors live within one snapshot); "
                    "use a temporal rule instead"
                )
            field_rules[name] = {
                "codec": config.codec_for(name),
                "error_bound": config.error_bound_for(name),
                "chunk_shape": rule.chunk_shape,
                "codec_params": dict(rule.codec_params),
            }
            spec = config.temporal_for(name)
            if spec is not None:
                temporal[name] = spec
        return field_rules, temporal

    @staticmethod
    def _check_times(steps, times) -> None:
        """Reject a mismatched ``times`` list before any step is written.

        Appended steps are durably flushed one by one, so a late length error
        would leave the earlier steps of a "failed" call published; when
        ``steps`` is sized, fail eagerly instead.
        """
        if times is None or not hasattr(steps, "__len__"):
            return
        if len(times) != len(steps):
            raise PipelineConfigError(
                f"times has {len(times)} entries but {len(steps)} snapshots were "
                "given; provide exactly one wall-time tag per snapshot"
            )

    def _write_steps(self, writer: ArchiveWriter, steps, times) -> int:
        count = 0
        for index, fieldset in enumerate(steps):
            if times is not None and index >= len(times):
                # unsized (generator) steps still get a clean lazy error
                raise PipelineConfigError(
                    f"times has {len(times)} entries but step {index} exists; "
                    "provide one wall-time tag per snapshot"
                )
            field_rules, temporal = self._step_rules(fieldset)
            writer.add_timestep(
                fieldset,
                time=None if times is None else float(times[index]),
                temporal=temporal or None,
                field_rules=field_rules,
            )
            count += 1
        return count

    def compress_timeseries(
        self,
        steps,
        path: PathLike,
        times: Optional[Sequence[float]] = None,
    ) -> PipelineResult:
        """Write a sequence of field sets as timesteps of one fresh archive.

        ``steps`` is an iterable of :class:`~repro.data.fields.FieldSet`
        snapshots (one per timestep, ids ``0..n-1``); ``times`` optionally
        tags each with a wall time.  Each field follows its effective
        ``temporal`` rule (pipeline default, overridden per field): delta
        coding against the decoded previous step with periodic anchors, or
        independent per-step storage.  Use :meth:`append_timesteps` to extend
        the archive later — appended steps are bit-identical to what a longer
        single-shot write would have produced.
        """
        config = self.config
        self._check_times(steps, times)
        attrs = dict(config.attrs)
        attrs["pipeline"] = config.name
        attrs["pipeline_config"] = config.to_dict()
        start = time.perf_counter()
        with ArchiveWriter(
            path,
            codec=config.codec,
            error_bound=config.error_bound,
            chunk_shape=config.chunk_shape,
            max_workers=config.effective_jobs,
            executor_kind=config.executor_kind,
            attrs=attrs,
        ) as writer:
            count = self._write_steps(writer, steps, times)
            entries = [writer.manifest[name] for name in writer.manifest.names]
        seconds = time.perf_counter() - start
        result = PipelineResult(
            archive=Path(path),
            fields=[FieldReport.from_entry(entry) for entry in entries],
            seconds=seconds,
        )
        result.extras["timesteps"] = count
        return result

    def append_timesteps(
        self,
        path: PathLike,
        steps,
        times: Optional[Sequence[float]] = None,
        recover: bool = False,
    ) -> PipelineResult:
        """Append snapshots to an existing archive, one flush per timestep.

        Reopens the archive (``recover=True`` resumes past a torn tail from a
        crashed session), continues the timestep numbering and each field's
        anchor cadence, and durably publishes the manifest after every step —
        a crash loses at most the step in flight.
        """
        self._check_times(steps, times)
        start = time.perf_counter()
        with ArchiveWriter(
            path,
            codec=self.config.codec,
            error_bound=self.config.error_bound,
            chunk_shape=self.config.chunk_shape,
            max_workers=self.config.effective_jobs,
            executor_kind=self.config.executor_kind,
            mode="a",
            recover=recover,
        ) as writer:
            known = set(writer.manifest.names)  # report only what this call added
            count = self._write_steps(writer, steps, times)
            entries = [
                writer.manifest[name]
                for name in writer.manifest.names
                if name not in known
            ]
        seconds = time.perf_counter() - start
        result = PipelineResult(
            archive=Path(path),
            fields=[FieldReport.from_entry(entry) for entry in entries],
            seconds=seconds,
        )
        result.extras["timesteps"] = count
        return result

    # ------------------------------------------------------------------ #
    # decompression / verification
    # ------------------------------------------------------------------ #
    def decompress(
        self,
        path: PathLike,
        fields: Optional[Sequence[str]] = None,
    ) -> FieldSet:
        """Read an archive back into a :class:`~repro.data.fields.FieldSet`.

        No configuration is needed to decode — the archive manifest records
        every codec and parameter — so this works on any XFA1 archive, not
        just ones this pipeline wrote.  ``fields`` selects a subset.  Chunk
        decodes run through the shared execution engine, honouring the
        config's ``jobs`` / ``executor_kind`` knobs.
        """
        with self._open_reader(path) as reader:
            names = list(fields) if fields is not None else reader.names
            decoded: List[Field] = []
            for name in names:
                with _obs.span("pipeline.decompress.field_seconds", field=name):
                    decoded.append(Field(name, reader.read_field(name)))
            restored = FieldSet(
                decoded,
                name=str(reader.attrs.get("dataset", Path(path).stem)),
            )
        return restored

    def verify(self, path: PathLike, deep: bool = True) -> Dict:
        """CRC-check (and with ``deep=True`` fully decode) every chunk.

        Returns the :meth:`~repro.store.reader.ArchiveReader.verify` report:
        ``{"ok": bool, "fields": {...}, "errors": [...]}``.  Chunk checks run
        through the shared execution engine (``jobs`` / ``executor_kind``).
        """
        with self._open_reader(path) as reader:
            with _obs.span("pipeline.verify_seconds", deep=deep):
                return reader.verify(deep=deep)

    def _open_reader(self, path: PathLike) -> ArchiveReader:
        """An :class:`ArchiveReader` wired to the config's engine knobs."""
        return ArchiveReader(
            path,
            jobs=self.config.effective_jobs,
            executor_kind=self.config.executor_kind,
            backend=self.config.io_backend,
        )


def reconstruct_anchors(
    fieldset: FieldSet,
    anchor_names: Sequence[str],
    error_bound: Union[ErrorBound, float],
    cache: Optional[Dict] = None,
    cache_key: Tuple = (),
) -> List[np.ndarray]:
    """Baseline-compress and decompress anchor fields, returning float64 arrays.

    Cross-field prediction must run on the anchors *as the decompressor will
    see them*, i.e. after an error-bounded round trip — not on the originals.
    This helper centralises that round trip for in-memory workflows (the
    experiment runners, examples); archive-based workflows get the same
    guarantee from the store itself, which reconstructs anchor chunks from the
    archive.

    ``error_bound`` may be an :class:`ErrorBound` or a bare float (interpreted
    as a value-range-relative bound).  ``cache`` is an optional mutable mapping
    shared across calls; reconstructions are memoised under
    ``(*cache_key, name)`` so several targets with overlapping anchors reuse
    them.
    """
    from repro.sz.pipeline import SZCompressor

    if not isinstance(error_bound, ErrorBound):
        error_bound = ErrorBound.relative(float(error_bound))
    baseline = SZCompressor(error_bound=error_bound)
    reconstructed: List[np.ndarray] = []
    for name in anchor_names:
        key = (*cache_key, name)
        if cache is not None and key in cache:
            reconstructed.append(cache[key])
            continue
        payload = baseline.compress(fieldset[name].data, field_name=name).payload
        recon = baseline.decompress(payload).astype(np.float64)
        if cache is not None:
            cache[key] = recon
        reconstructed.append(recon)
    return reconstructed
