"""Validated, JSON-round-trippable configuration for the compression pipeline.

A :class:`PipelineConfig` is the single declarative object that tells
:class:`~repro.pipeline.pipeline.CompressionPipeline` how to compress a field
set: the default codec and error bound, the chunk grid, the worker pool, and
per-field overrides (:class:`FieldRule`) — including cross-field rules that
name anchor fields, exactly mirroring what the XFA1 archive writer supports.

The JSON form is the configuration's canonical exchange format: it is what
``repro compress <config.json>`` reads, what the archive records in its
attributes for provenance, and what :mod:`repro.pipeline.scenarios` presets
serialise to.  Round-tripping is exact::

    PipelineConfig.from_json(config.to_json()).to_dict() == config.to_dict()

Parsing is *strict*: unknown keys raise :class:`PipelineConfigError` instead of
being silently dropped, so a typo in a config file fails loudly rather than
falling back to a default.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.encoding.entropy import get_entropy_coder
from repro.store.codecs import codec_class
from repro.store.temporal import TemporalSpec
from repro.sz.errors import ErrorBound

__all__ = ["PipelineConfigError", "FieldRule", "PipelineConfig"]

PathLike = Union[str, os.PathLike]

_EXECUTOR_KINDS = ("thread", "serial")

_IO_BACKENDS = ("auto", "file", "mmap")


class PipelineConfigError(ValueError):
    """Raised when a pipeline configuration is malformed or inconsistent."""


def _as_error_bound(value, context: str) -> ErrorBound:
    """Coerce an :class:`ErrorBound`, its dict form, or a bare number (relative)."""
    try:
        if isinstance(value, ErrorBound):
            return value
        if isinstance(value, dict):
            return ErrorBound.from_dict(value)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return ErrorBound.relative(float(value))
    except (KeyError, TypeError, ValueError) as exc:
        raise PipelineConfigError(f"{context}: invalid error bound {value!r}: {exc}") from exc
    raise PipelineConfigError(
        f"{context}: error bound must be an ErrorBound, a {{mode, value}} dict, "
        f"or a number (relative), got {type(value).__name__}"
    )


def _as_chunk_shape(value, context: str) -> Optional[Tuple[int, ...]]:
    if value is None:
        return None
    if isinstance(value, (str, bytes)):
        raise PipelineConfigError(
            f"{context}: chunk shape must be a list of ints, got the string {value!r}"
        )
    try:
        shape = tuple(int(c) for c in value)
    except (TypeError, ValueError) as exc:
        raise PipelineConfigError(f"{context}: chunk shape {value!r} is not a sequence of ints") from exc
    if not shape or any(c <= 0 for c in shape):
        raise PipelineConfigError(f"{context}: chunk shape entries must be positive, got {shape}")
    return shape


def _check_keys(payload: Dict, allowed: Sequence[str], context: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise PipelineConfigError(
            f"{context}: unknown key(s) {unknown}; allowed: {sorted(allowed)}"
        )


def _check_codec(name: str, context: str) -> None:
    try:
        codec_class(name)
    except ValueError as exc:
        raise PipelineConfigError(f"{context}: {exc}") from exc


def _as_temporal(value, context: str) -> Optional[Dict]:
    """Coerce a temporal rule into its canonical, validated dict form.

    Accepts ``None``, a :class:`~repro.store.temporal.TemporalSpec`, its dict
    form, or a bare mode string (``"delta"`` / ``"independent"``).
    """
    if value is None:
        return None
    try:
        spec = TemporalSpec.coerce(value, context=context)
    except ValueError as exc:
        raise PipelineConfigError(f"{context}: {exc}") from exc
    if spec.base is not None:
        _check_codec(spec.base, f"{context}: temporal base")
        if codec_class(spec.base).requires_anchors:
            raise PipelineConfigError(
                f"{context}: temporal base codec {spec.base!r} must decode "
                "without anchors"
            )
    return spec.to_dict()


@dataclass
class FieldRule:
    """Per-field override of the pipeline defaults.

    Every attribute is optional; ``None`` / empty means "use the pipeline
    default".  ``anchors`` names other fields of the same field set and is
    required for (and only valid with) codecs that declare
    ``requires_anchors`` (the cross-field codec).  ``codec_params`` is passed
    through to the codec constructor and must stay JSON-serialisable — it ends
    up in the archive manifest.  ``temporal`` is the streaming-ingest rule
    (see :class:`~repro.store.temporal.TemporalSpec`): for time-stepped runs
    it chooses delta vs independent coding and the anchor cadence; one-shot
    compression ignores it.
    """

    codec: Optional[str] = None
    error_bound: Optional[ErrorBound] = None
    anchors: Tuple[str, ...] = ()
    chunk_shape: Optional[Tuple[int, ...]] = None
    codec_params: Dict = field(default_factory=dict)
    temporal: Optional[Dict] = None

    def __post_init__(self) -> None:
        if self.error_bound is not None:
            self.error_bound = _as_error_bound(self.error_bound, "field rule")
        if isinstance(self.anchors, (str, bytes)):
            raise PipelineConfigError(
                f"field rule: anchors must be a list of field names, got the "
                f"string {self.anchors!r}"
            )
        self.anchors = tuple(str(a) for a in self.anchors)
        self.chunk_shape = _as_chunk_shape(self.chunk_shape, "field rule")
        self.temporal = _as_temporal(self.temporal, "field rule")

    def to_dict(self) -> Dict:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        payload: Dict = {}
        if self.codec is not None:
            payload["codec"] = self.codec
        if self.error_bound is not None:
            payload["error_bound"] = self.error_bound.to_dict()
        if self.anchors:
            payload["anchors"] = list(self.anchors)
        if self.chunk_shape is not None:
            payload["chunk_shape"] = list(self.chunk_shape)
        if self.codec_params:
            payload["codec_params"] = dict(self.codec_params)
        if self.temporal is not None:
            payload["temporal"] = dict(self.temporal)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict, context: str = "field rule") -> "FieldRule":
        """Parse the dict form, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise PipelineConfigError(f"{context}: expected an object, got {type(payload).__name__}")
        _check_keys(
            payload,
            ("codec", "error_bound", "anchors", "chunk_shape", "codec_params", "temporal"),
            context,
        )
        codec_params = payload.get("codec_params", {})
        if not isinstance(codec_params, dict):
            raise PipelineConfigError(
                f"{context}: codec_params must be an object, got {type(codec_params).__name__}"
            )
        return cls(
            codec=payload.get("codec"),
            error_bound=(
                _as_error_bound(payload["error_bound"], context)
                if "error_bound" in payload
                else None
            ),
            anchors=payload.get("anchors", ()),
            chunk_shape=payload.get("chunk_shape"),
            codec_params=dict(codec_params),
            temporal=payload.get("temporal"),
        )


@dataclass
class PipelineConfig:
    """Declarative description of one end-to-end compression run.

    Parameters
    ----------
    name:
        Free-form label recorded in the archive attributes.
    codec:
        Default codec registry name for every field without a rule.
    error_bound:
        Default error bound for lossy codecs (relative bounds are resolved
        against each full field, matching single-shot semantics).
    chunk_shape:
        Default chunk tile; ``None`` lets the archive writer pick 64 per axis.
    jobs / executor_kind:
        Worker pool for the shared chunk execution engine, used by *both*
        directions: per-chunk compression on write and per-chunk decode on
        :meth:`~repro.pipeline.pipeline.CompressionPipeline.decompress` /
        ``verify``.  ``jobs=None`` sizes the pool to the machine, ``jobs=1``
        forces the serial reference loop; ``executor_kind`` is ``"thread"``
        or ``"serial"``.
    max_workers:
        Deprecated alias for ``jobs`` (kept for configs written before the
        engine existed); ``jobs`` wins when both are set.
    io_backend:
        Archive read backend for ``decompress`` / ``verify``: ``"auto"``
        (default — mmap where possible), ``"mmap"``, or ``"file"`` (see
        :mod:`repro.store.bytestore`).  The write path always uses the file
        backend.
    temporal:
        Default streaming-ingest rule applied to every field of a
        time-stepped run (``{"mode": "delta", "anchor_every": K, "base": ...}``,
        see :class:`~repro.store.temporal.TemporalSpec`); per-field
        ``FieldRule.temporal`` overrides it.  One-shot compression ignores it.
    fields:
        ``{field_name: FieldRule}`` overrides, including cross-field rules.
    source / output:
        Optional conveniences for ``repro compress``: a fieldset directory or
        synthetic dataset name, and the archive path to write.  The pipeline
        API itself takes these explicitly and ignores both.
    attrs:
        Extra JSON-serialisable attributes stored in the archive.
    """

    name: str = "pipeline"
    codec: str = "sz"
    error_bound: ErrorBound = field(default_factory=lambda: ErrorBound.relative(1e-3))
    chunk_shape: Optional[Tuple[int, ...]] = None
    jobs: Optional[int] = None
    max_workers: Optional[int] = None
    executor_kind: str = "thread"
    io_backend: str = "auto"
    temporal: Optional[Dict] = None
    fields: Dict[str, FieldRule] = field(default_factory=dict)
    source: Optional[str] = None
    output: Optional[str] = None
    attrs: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.error_bound = _as_error_bound(self.error_bound, "pipeline")
        self.chunk_shape = _as_chunk_shape(self.chunk_shape, "pipeline")
        self.temporal = _as_temporal(self.temporal, "pipeline")

    # ------------------------------------------------------------------ #
    # resolution helpers
    # ------------------------------------------------------------------ #
    def rule_for(self, field_name: str) -> FieldRule:
        """The rule for ``field_name`` (an all-defaults rule when absent)."""
        return self.fields.get(field_name, FieldRule())

    @property
    def effective_jobs(self) -> Optional[int]:
        """Engine worker count: ``jobs``, falling back to legacy ``max_workers``."""
        return self.jobs if self.jobs is not None else self.max_workers

    def codec_for(self, field_name: str) -> str:
        """Effective codec registry name for ``field_name``."""
        rule = self.rule_for(field_name)
        return rule.codec if rule.codec is not None else self.codec

    def error_bound_for(self, field_name: str) -> ErrorBound:
        """Effective error bound for ``field_name``."""
        rule = self.rule_for(field_name)
        return rule.error_bound if rule.error_bound is not None else self.error_bound

    def temporal_for(self, field_name: str) -> Optional[TemporalSpec]:
        """Effective temporal spec for ``field_name`` in a time-stepped run.

        The per-field rule wins over the pipeline default; fields whose
        effective base codec comes from their rule keep it as the residual /
        anchor codec unless the spec names its own ``base``.
        """
        rule = self.rule_for(field_name)
        payload = rule.temporal if rule.temporal is not None else self.temporal
        if payload is None:
            return None
        spec = TemporalSpec.from_dict(payload)
        if spec.base is None:
            spec = TemporalSpec(
                mode=spec.mode, anchor_every=spec.anchor_every, base=self.codec_for(field_name)
            )
        return spec

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self) -> "PipelineConfig":
        """Check internal consistency; returns ``self`` so calls can chain.

        Raises :class:`PipelineConfigError` on the first problem found:
        unknown codec names, anchor rules that do not match their codec's
        ``requires_anchors`` declaration, anchors that are themselves anchored
        targets (the store requires anchors to decode without further
        anchors), self-anchoring, duplicate anchors, bad executor kinds, or
        non-serialisable ``attrs``.
        """
        if not isinstance(self.name, str) or not self.name:
            raise PipelineConfigError("pipeline name must be a non-empty string")
        _check_codec(self.codec, "pipeline codec")
        if self.executor_kind not in _EXECUTOR_KINDS:
            raise PipelineConfigError(
                f"executor_kind must be one of {_EXECUTOR_KINDS}, got {self.executor_kind!r}"
            )
        if self.io_backend not in _IO_BACKENDS:
            raise PipelineConfigError(
                f"io_backend must be one of {_IO_BACKENDS}, got {self.io_backend!r}"
            )
        for knob in ("jobs", "max_workers"):
            value = getattr(self, knob)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                raise PipelineConfigError(f"{knob} must be an integer, got {value!r}")
            if value < 1:
                raise PipelineConfigError(f"{knob} must be >= 1, got {value}")
        if not isinstance(self.attrs, dict):
            raise PipelineConfigError(
                f"attrs must be an object, got {type(self.attrs).__name__}"
            )
        try:
            json.dumps(self.attrs, sort_keys=True)
        except TypeError as exc:
            raise PipelineConfigError(f"attrs must be JSON-serialisable: {exc}") from exc

        for field_name, rule in self.fields.items():
            context = f"field {field_name!r}"
            if not isinstance(rule, FieldRule):
                raise PipelineConfigError(f"{context}: rule must be a FieldRule")
            codec_name = rule.codec if rule.codec is not None else self.codec
            _check_codec(codec_name, context)
            cls = codec_class(codec_name)
            if cls.requires_anchors and not rule.anchors:
                raise PipelineConfigError(
                    f"{context}: codec {codec_name!r} requires at least one anchor field"
                )
            if rule.anchors and not cls.requires_anchors:
                raise PipelineConfigError(
                    f"{context}: codec {codec_name!r} does not accept anchor fields"
                )
            if rule.temporal is not None and rule.anchors:
                raise PipelineConfigError(
                    f"{context}: a rule cannot set both anchors (cross-field) and "
                    "temporal (time-delta) coding"
                )
            if field_name in rule.anchors:
                raise PipelineConfigError(f"{context}: a field cannot anchor itself")
            if len(set(rule.anchors)) != len(rule.anchors):
                raise PipelineConfigError(f"{context}: anchor names must be distinct")
            target_chunk = rule.chunk_shape if rule.chunk_shape is not None else self.chunk_shape
            for anchor in rule.anchors:
                anchor_rule = self.fields.get(anchor)
                if anchor_rule is not None and anchor_rule.anchors:
                    raise PipelineConfigError(
                        f"{context}: anchor {anchor!r} is itself a cross-field target; "
                        "anchors must be stored with a non-anchored codec"
                    )
                anchor_chunk = (
                    anchor_rule.chunk_shape
                    if anchor_rule is not None and anchor_rule.chunk_shape is not None
                    else self.chunk_shape
                )
                if anchor_chunk != target_chunk:
                    # fields of a set share one grid, so differing configured
                    # tiles always produce misaligned chunk grids — the store
                    # would reject this mid-write, after compressing anchors
                    raise PipelineConfigError(
                        f"{context}: chunk shape {target_chunk} does not match anchor "
                        f"{anchor!r} chunk shape {anchor_chunk} (aligned grids required)"
                    )
            if not isinstance(rule.codec_params, dict):
                raise PipelineConfigError(
                    f"{context}: codec_params must be an object, got "
                    f"{type(rule.codec_params).__name__}"
                )
            # these already have dedicated config keys; letting them through
            # would collide with the writer's explicit keyword arguments
            reserved = sorted(
                set(rule.codec_params) & {"codec", "error_bound", "chunk_shape", "anchors"}
            )
            if reserved:
                raise PipelineConfigError(
                    f"{context}: codec_params must not set {reserved}; use the "
                    "dedicated rule key(s) instead"
                )
            if "entropy" in rule.codec_params:
                # entropy modes come from the pluggable coder registry, so a
                # typo fails here — at validation time — not mid-compression
                try:
                    get_entropy_coder(rule.codec_params["entropy"])
                except (TypeError, ValueError) as exc:
                    raise PipelineConfigError(f"{context}: {exc}") from exc
            try:
                json.dumps(rule.codec_params, sort_keys=True)
            except TypeError as exc:
                raise PipelineConfigError(
                    f"{context}: codec_params must be JSON-serialisable: {exc}"
                ) from exc
        return self

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        payload: Dict = {
            "name": self.name,
            "codec": self.codec,
            "error_bound": self.error_bound.to_dict(),
            "executor_kind": self.executor_kind,
        }
        if self.chunk_shape is not None:
            payload["chunk_shape"] = list(self.chunk_shape)
        if self.jobs is not None:
            payload["jobs"] = int(self.jobs)
        if self.max_workers is not None:
            payload["max_workers"] = int(self.max_workers)
        if self.io_backend != "auto":
            # emitted only when overridden: existing configs (and the config
            # JSON archives record in their attrs) stay byte-identical
            payload["io_backend"] = self.io_backend
        if self.temporal is not None:
            payload["temporal"] = dict(self.temporal)
        if self.fields:
            payload["fields"] = {name: rule.to_dict() for name, rule in self.fields.items()}
        if self.source is not None:
            payload["source"] = self.source
        if self.output is not None:
            payload["output"] = self.output
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "PipelineConfig":
        """Parse the dict form strictly and validate the result."""
        if not isinstance(payload, dict):
            raise PipelineConfigError(f"config must be an object, got {type(payload).__name__}")
        _check_keys(
            payload,
            (
                "name",
                "codec",
                "error_bound",
                "chunk_shape",
                "jobs",
                "max_workers",
                "executor_kind",
                "io_backend",
                "temporal",
                "fields",
                "source",
                "output",
                "attrs",
            ),
            "config",
        )
        fields_payload = payload.get("fields", {})
        if not isinstance(fields_payload, dict):
            raise PipelineConfigError("config: 'fields' must be an object of field rules")
        attrs_payload = payload.get("attrs", {})
        if not isinstance(attrs_payload, dict):
            raise PipelineConfigError(
                f"config: 'attrs' must be an object, got {type(attrs_payload).__name__}"
            )
        config = cls(
            name=payload.get("name", "pipeline"),
            codec=payload.get("codec", "sz"),
            error_bound=(
                _as_error_bound(payload["error_bound"], "config")
                if "error_bound" in payload
                else ErrorBound.relative(1e-3)
            ),
            chunk_shape=payload.get("chunk_shape"),
            jobs=payload.get("jobs"),
            max_workers=payload.get("max_workers"),
            executor_kind=payload.get("executor_kind", "thread"),
            io_backend=payload.get("io_backend", "auto"),
            temporal=payload.get("temporal"),
            fields={
                str(name): FieldRule.from_dict(rule, context=f"field {name!r}")
                for name, rule in fields_payload.items()
            },
            source=payload.get("source"),
            output=payload.get("output"),
            attrs=dict(attrs_payload),
        )
        return config.validate()

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "PipelineConfig":
        """Parse a JSON string produced by :meth:`to_json` (strict, validated)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PipelineConfigError(f"config is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: PathLike) -> Path:
        """Write the JSON form to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "PipelineConfig":
        """Read and validate a config JSON file."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise PipelineConfigError(f"cannot read config {path}: {exc}") from exc
        return cls.from_json(text)
