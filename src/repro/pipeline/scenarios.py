"""Named workloads: synthetic data + pipeline config presets, runnable end to end.

A *scenario* bundles everything ``repro run <name>`` needs: which synthetic
dataset to generate (and at what grid size), which fields to keep, and the
:class:`~repro.pipeline.config.PipelineConfig` preset to compress them with.
Scenarios are the executable documentation of the system's workloads — each
exercises a different slice of the stack (plain SZ baseline, mixed codecs,
cross-field prediction through archived anchors, chunked random access,
exact lossless archiving) at sizes that finish in seconds of pure Python.

New workloads plug in via :func:`register_scenario`; the CLI and the smoke
tests iterate :func:`available_scenarios`, so a registered scenario is
immediately runnable and tested.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.data.fields import FieldSet
from repro.data.synthetic import make_dataset, make_timeseries
from repro.pipeline.config import FieldRule, PipelineConfig
from repro.pipeline.pipeline import CompressionPipeline, PipelineResult
from repro.store.reader import ArchiveReader

__all__ = [
    "Scenario",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "scenario_table",
    "run_scenario",
]

PathLike = Union[str, os.PathLike]

#: Tiny cross-field training budget: per-chunk CFNNs on scenario-sized chunks
#: need only a few epochs to beat the Lorenzo fallback on synthetic data.
_FAST_CROSS_FIELD: Dict = {"epochs": 2, "n_patches": 8}


@dataclass(frozen=True)
class Scenario:
    """One named, self-contained pipeline workload.

    Parameters
    ----------
    name:
        Registry key, also the default archive stem for ``repro run``.
    description:
        One line shown by ``repro run --list``.
    dataset:
        Synthetic dataset generator name (``cesm`` / ``scale`` / ``hurricane``).
    shape:
        Grid shape passed to the generator (sized for seconds, not hours).
    config:
        The :class:`PipelineConfig` preset applied to the generated fields.
    fields:
        Optional subset of dataset fields to compress (``None`` = all).
    demo_region:
        Optional region, as slices per axis, that :func:`run_scenario` reads
        back through the random-access path to report chunks-touched stats.
    steps:
        ``0`` (default) runs the scenario as a one-shot snapshot compression;
        ``> 0`` makes it a *streaming* scenario: :func:`run_scenario` builds a
        temporally correlated series (:func:`~repro.data.synthetic.make_timeseries`)
        and writes it as timesteps through
        :meth:`~repro.pipeline.pipeline.CompressionPipeline.compress_timeseries`,
        honouring the config's ``temporal`` rules.
    dt:
        Wall-time spacing between steps of a streaming scenario.
    preview_fraction:
        When set, :func:`run_scenario` additionally performs a progressive
        *preview* read of the first field (over ``demo_region`` when one is
        set) at this entropy-byte budget and attaches the decode report under
        ``extras["preview"]`` — the dashboard-traffic workload for zfp
        grouped-layout fields.
    serve_requests:
        When ``> 0``, :func:`run_scenario` stands up an in-process
        :class:`~repro.serve.service.ArchiveService` over the written archive
        and replays this many HTTP-shaped region requests against it (the
        first field, over ``demo_region`` when one is set), attaching request
        counts, shared-cache decode dedup and latency quantiles under
        ``extras["serving"]`` — the concurrent-dashboard workload the service
        layer exists for, with no sockets involved.
    """

    name: str
    description: str
    dataset: str
    shape: Tuple[int, ...]
    config: PipelineConfig = field(default_factory=PipelineConfig)
    fields: Optional[Tuple[str, ...]] = None
    demo_region: Optional[Tuple[slice, ...]] = None
    steps: int = 0
    dt: float = 1.0
    preview_fraction: Optional[float] = None
    serve_requests: int = 0

    def build_fieldset(self, seed: int = 0) -> FieldSet:
        """Generate (and optionally subset) the scenario's synthetic data."""
        fieldset = make_dataset(self.dataset, shape=self.shape, seed=seed)
        if self.fields is not None:
            fieldset = fieldset.subset(list(self.fields))
        return fieldset

    def build_timeseries(self, seed: int = 0) -> List[FieldSet]:
        """Generate the streaming scenario's snapshot sequence."""
        if self.steps < 1:
            raise ValueError(f"scenario {self.name!r} is not a streaming scenario")
        return make_timeseries(
            self.dataset, shape=self.shape, steps=self.steps, seed=seed,
            fields=self.fields,
        )

    def build_config(self) -> PipelineConfig:
        """A validated copy of the preset, labelled with the scenario name."""
        return replace(self.config, name=f"scenario:{self.name}").validate()


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Register a scenario under ``scenario.name`` (replacing any previous one)."""
    if not scenario.name:
        raise ValueError("scenario must have a non-empty name")
    scenario.build_config()  # fail at registration, not at run time
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        )
    return _REGISTRY[name]


def available_scenarios() -> List[str]:
    """Sorted names of all registered scenarios."""
    return sorted(_REGISTRY)


def scenario_table() -> str:
    """One line per registered scenario (used by ``repro run --list``)."""
    lines = [f"{'scenario':<16} {'dataset':<10} {'grid':<12} description"]
    for name in available_scenarios():
        scenario = _REGISTRY[name]
        lines.append(
            f"{scenario.name:<16} {scenario.dataset:<10} "
            f"{'x'.join(map(str, scenario.shape)):<12} {scenario.description}"
        )
    return "\n".join(lines)


def run_scenario(
    name: str,
    output: PathLike,
    seed: int = 0,
    verify: bool = True,
    jobs: Optional[int] = None,
) -> PipelineResult:
    """Run one scenario end to end: generate, compress, verify, demo-read.

    Writes the archive to ``output`` and returns the
    :class:`~repro.pipeline.pipeline.PipelineResult` with the deep
    verification report attached (unless ``verify=False``) and, for scenarios
    with a ``demo_region``, random-access read statistics under
    ``extras["random_access"]``.  ``jobs`` overrides the scenario config's
    engine worker count (``1`` forces serial execution end to end).
    """
    scenario = get_scenario(name)
    config = scenario.build_config()
    if jobs is not None:
        config = replace(config, jobs=jobs).validate()
    pipeline = CompressionPipeline(config)
    if scenario.steps > 0:
        series = scenario.build_timeseries(seed=seed)
        times = [index * scenario.dt for index in range(len(series))]
        result = pipeline.compress_timeseries(series, output, times=times)
        with ArchiveReader(output, jobs=jobs) as reader:
            result.extras["steps"] = reader.steps
    else:
        fieldset = scenario.build_fieldset(seed=seed)
        result = pipeline.compress(fieldset, output)
    if verify:
        result.verify_report = pipeline.verify(output, deep=True)
    if scenario.demo_region is not None:
        with ArchiveReader(output, jobs=jobs) as reader:
            field_name = reader.names[0]
            window = reader.read_region(field_name, scenario.demo_region)
            stats = reader.cache_stats()
            total_chunks = len(reader.field(field_name).chunks)
        result.extras["random_access"] = {
            "field": field_name,
            "region_shape": list(window.shape),
            "chunks_decoded": stats["chunks_decoded"],
            "total_chunks": total_chunks,
        }
    if scenario.preview_fraction is not None:
        with ArchiveReader(output, jobs=jobs) as reader:
            field_name = reader.names[0]
            preview, info = reader.read_region_preview(
                field_name, scenario.demo_region, fraction=scenario.preview_fraction
            )
        result.extras["preview"] = {
            "field": field_name,
            "region_shape": list(preview.shape),
            **info,
        }
    if scenario.serve_requests > 0:
        result.extras["serving"] = _replay_serving_traffic(
            scenario, output, jobs=jobs
        )
    return result


def _replay_serving_traffic(
    scenario: Scenario, output: PathLike, jobs: Optional[int] = None
) -> Dict:
    """Dispatch the scenario's serving workload against an in-process service.

    Every request targets the same region of the first field, so with the
    shared single-flight cache the expected decode count is exactly the
    region's chunk count regardless of ``serve_requests`` — the dedup ratio
    reported here is the service layer's whole value proposition.
    """
    from repro.serve.service import ArchiveService
    from repro.store.shared_cache import SharedChunkCache

    query: Dict[str, str] = {}
    if scenario.demo_region is not None:
        query["region"] = ",".join(
            f"{sl.start}:{sl.stop}" for sl in scenario.demo_region
        )
    # a fresh cache, not the process singleton: the dedup numbers must
    # describe this replay alone
    with ArchiveService(
        {scenario.name: output}, cache=SharedChunkCache(), jobs=jobs
    ) as service:
        with service.handle(scenario.name).reader() as reader:
            target = reader.names[0]
        path = f"/archives/{scenario.name}/fields/{target}/region"
        ok = 0
        for _ in range(scenario.serve_requests):
            response = service.dispatch("GET", path, query=dict(query), headers={})
            if response.status == 200:
                ok += 1
        with service.handle(scenario.name).reader() as reader:
            stats = reader.cache_stats()
        requests = service.request_stats()
        return {
            "field": target,
            "requests": scenario.serve_requests,
            "ok": ok,
            "chunks_decoded": int(stats["chunks_decoded"]),
            "p99_seconds": requests.get("http.request.p99_seconds", 0.0),
        }


# --------------------------------------------------------------------------- #
# built-in scenarios
# --------------------------------------------------------------------------- #
register_scenario(
    Scenario(
        name="climate-small",
        description="CESM-like 2D radiative fields through the SZ baseline",
        dataset="cesm",
        shape=(48, 96),
        fields=("CLDTOT", "FLNT", "FLNTC", "LWCF"),
        config=PipelineConfig(codec="sz", error_bound=1e-3, chunk_shape=(24, 48)),
    )
)

register_scenario(
    Scenario(
        name="cross-field",
        description="Hurricane Wf stored via cross-field prediction from archived anchors",
        dataset="hurricane",
        shape=(8, 32, 32),
        fields=("Uf", "Vf", "Pf", "Wf"),
        config=PipelineConfig(
            codec="sz",
            error_bound=1e-3,
            chunk_shape=(8, 16, 16),
            fields={
                "Wf": FieldRule(
                    codec="cross-field",
                    anchors=("Uf", "Vf", "Pf"),
                    codec_params=dict(_FAST_CROSS_FIELD),
                )
            },
        ),
    )
)

register_scenario(
    Scenario(
        name="random-access",
        description="SCALE-like 3D winds, small ZFP chunks sized for region reads",
        dataset="scale",
        shape=(12, 48, 48),
        fields=("U", "V", "W"),
        config=PipelineConfig(codec="zfp", error_bound=1e-3, chunk_shape=(4, 16, 16)),
        demo_region=(slice(0, 4), slice(8, 24), slice(8, 24)),
    )
)

register_scenario(
    Scenario(
        name="zfp-progressive",
        description="CESM fields in the grouped ZFP layout, read back as coarse previews",
        dataset="cesm",
        shape=(48, 96),
        fields=("FLNT", "FLNTC", "LWCF"),
        config=PipelineConfig(codec="zfp", error_bound=1e-3, chunk_shape=(24, 48)),
        demo_region=(slice(0, 48), slice(0, 48)),
        preview_fraction=0.25,
    )
)

register_scenario(
    Scenario(
        name="serve-dashboard",
        description="Concurrent dashboard traffic through the HTTP service over one shared cache",
        dataset="cesm",
        shape=(48, 96),
        fields=("FLNT", "LWCF"),
        config=PipelineConfig(codec="zfp", error_bound=1e-3, chunk_shape=(24, 48)),
        demo_region=(slice(0, 48), slice(0, 48)),
        serve_requests=8,
    )
)

register_scenario(
    Scenario(
        name="lossless-audit",
        description="Bit-exact archiving of CESM cloud fields (no error bound)",
        dataset="cesm",
        shape=(32, 64),
        fields=("CLDLOW", "CLDMED", "CLDHGH"),
        config=PipelineConfig(codec="lossless", chunk_shape=(16, 32)),
    )
)

register_scenario(
    Scenario(
        name="climate-timeseries",
        description="Streaming CESM radiative fields, temporal-delta coded with anchors",
        dataset="cesm",
        shape=(48, 96),
        fields=("FLNT", "FLNTC", "LWCF"),
        steps=5,
        dt=0.25,
        config=PipelineConfig(
            codec="sz",
            error_bound=1e-3,
            chunk_shape=(24, 48),
            temporal={"mode": "delta", "anchor_every": 4},
        ),
    )
)

register_scenario(
    Scenario(
        name="mixed-codecs",
        description="One archive mixing sz, zfp, lossless and cross-field per field",
        dataset="cesm",
        shape=(48, 96),
        fields=("FLNT", "FLNTC", "FLUTC", "LWCF"),
        config=PipelineConfig(
            codec="sz",
            error_bound=1e-3,
            chunk_shape=(24, 48),
            fields={
                "FLNTC": FieldRule(codec="zfp"),
                "FLUTC": FieldRule(codec="lossless"),
                "LWCF": FieldRule(
                    codec="cross-field",
                    anchors=("FLUTC", "FLNT"),
                    codec_params=dict(_FAST_CROSS_FIELD),
                ),
            },
        ),
    )
)
