"""Shared utilities: argument validation, lightweight logging, and timing helpers.

These helpers are intentionally dependency-free (NumPy only) so that every other
subpackage can rely on them without import cycles.
"""

from repro.utils.validation import (
    ensure_array,
    ensure_dtype,
    ensure_positive,
    ensure_in,
    ensure_shape_match,
    ensure_ndim,
)
from repro.utils.timing import Timer, timed
from repro.utils.logging import get_logger

__all__ = [
    "ensure_array",
    "ensure_dtype",
    "ensure_positive",
    "ensure_in",
    "ensure_shape_match",
    "ensure_ndim",
    "Timer",
    "timed",
    "get_logger",
]
