"""Argument validation helpers used across the compression pipeline.

The compressors operate on large floating point arrays where silent dtype or
shape mismatches produce subtly wrong compression ratios rather than crashes.
Centralising the checks keeps the error messages consistent and the call sites
short.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ensure_array",
    "ensure_dtype",
    "ensure_positive",
    "ensure_in",
    "ensure_shape_match",
    "ensure_ndim",
]


def ensure_array(data, name: str = "data", dtype=None, copy: bool = False) -> np.ndarray:
    """Convert ``data`` to a C-contiguous :class:`numpy.ndarray`.

    Parameters
    ----------
    data:
        Any array-like object.
    name:
        Name used in error messages.
    dtype:
        Optional dtype to cast to.  When ``None`` the input dtype is kept for
        floating point inputs and promoted to ``float64`` for everything else.
    copy:
        Force a copy even when the input is already an ndarray of the right
        dtype.

    Returns
    -------
    numpy.ndarray
        A contiguous array.

    Raises
    ------
    TypeError
        If ``data`` cannot be converted to a numeric array.
    ValueError
        If the resulting array has zero size.
    """
    try:
        arr = np.asarray(data)
    except Exception as exc:  # pragma: no cover - defensive
        raise TypeError(f"{name} cannot be converted to an ndarray: {exc}") from exc
    if arr.dtype == object:
        raise TypeError(f"{name} must be numeric, got object dtype")
    if dtype is None:
        if not np.issubdtype(arr.dtype, np.floating):
            dtype = np.float64
    if dtype is not None:
        arr = arr.astype(dtype, copy=copy)
    elif copy:
        arr = arr.copy()
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    return np.ascontiguousarray(arr)


def ensure_dtype(arr: np.ndarray, dtypes: Iterable, name: str = "array") -> np.ndarray:
    """Check that ``arr.dtype`` is one of ``dtypes``."""
    dtypes = tuple(np.dtype(d) for d in dtypes)
    if arr.dtype not in dtypes:
        allowed = ", ".join(str(d) for d in dtypes)
        raise TypeError(f"{name} has dtype {arr.dtype}, expected one of: {allowed}")
    return arr


def ensure_positive(value, name: str = "value", strict: bool = True):
    """Validate that a scalar is positive (strictly by default)."""
    if not np.isscalar(value) or isinstance(value, (bool, np.bool_)):
        raise TypeError(f"{name} must be a numeric scalar, got {type(value).__name__}")
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def ensure_in(value, allowed: Sequence, name: str = "value"):
    """Validate membership of ``value`` in ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {list(allowed)!r}, got {value!r}")
    return value


def ensure_shape_match(a: np.ndarray, b: np.ndarray, name_a: str = "a", name_b: str = "b"):
    """Validate that two arrays have identical shapes."""
    if a.shape != b.shape:
        raise ValueError(
            f"shape mismatch: {name_a} has shape {a.shape} but {name_b} has shape {b.shape}"
        )
    return a, b


def ensure_ndim(arr: np.ndarray, ndims: Iterable[int], name: str = "array") -> np.ndarray:
    """Validate that ``arr.ndim`` is one of ``ndims``."""
    ndims = tuple(ndims)
    if arr.ndim not in ndims:
        raise ValueError(f"{name} must have ndim in {ndims}, got {arr.ndim}")
    return arr
