"""Timing helpers for throughput accounting in the compression pipeline."""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

__all__ = ["Timer", "timed"]


@dataclass
class Timer:
    """Accumulating wall-clock timer with named sections.

    Example
    -------
    >>> t = Timer()
    >>> with t.section("quantize"):
    ...     pass
    >>> "quantize" in t.totals
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    _stack: List[tuple] = field(default_factory=list)

    def section(self, name: str):
        """Return a context manager accumulating time under ``name``."""
        timer = self

        class _Section:
            def __enter__(self_inner):
                timer._stack.append((name, time.perf_counter()))
                return timer

            def __exit__(self_inner, exc_type, exc, tb):
                start_name, start = timer._stack.pop()
                elapsed = time.perf_counter() - start
                timer.totals[start_name] = timer.totals.get(start_name, 0.0) + elapsed
                timer.counts[start_name] = timer.counts.get(start_name, 0) + 1
                return False

        return _Section()

    def total(self, name: str) -> float:
        """Total accumulated seconds for section ``name`` (0.0 if never entered)."""
        return self.totals.get(name, 0.0)

    def reset(self) -> None:
        """Clear all accumulated sections."""
        self.totals.clear()
        self.counts.clear()
        self._stack.clear()

    def summary(self) -> str:
        """Human readable multi-line summary sorted by total time."""
        lines = []
        for name, total in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            count = self.counts.get(name, 0)
            lines.append(f"{name:<30s} {total:10.4f} s  ({count} calls)")
        return "\n".join(lines)


def timed(func: Callable) -> Callable:
    """Decorator attaching the last call's wall-clock time as ``.last_elapsed``."""

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        wrapper.last_elapsed = time.perf_counter() - start
        return result

    wrapper.last_elapsed = 0.0
    return wrapper
