"""Timing helpers for throughput accounting in the compression pipeline.

Both helpers are thin compatibility shims over the :mod:`repro.obs` telemetry
recorder.  Historically :class:`Timer` kept a shared section stack and
:func:`timed` stored its measurement on a shared function attribute — both
raced when called from :class:`~repro.parallel.engine.ChunkScheduler` worker
threads (sections popped each other's entries; ``last_elapsed`` read one
thread's value from another).  Rebasing them on a per-instance
:class:`~repro.obs.Recorder` (lock-protected histograms) and thread-local
state keeps the public API while making every method safe to call from any
thread.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Callable, Dict

from repro.obs import recorder as _obs

__all__ = ["Timer", "timed"]


class Timer:
    """Accumulating wall-clock timer with named sections (thread-safe).

    Backed by a private telemetry :class:`~repro.obs.Recorder`: each
    :meth:`section` context carries its own start time and folds the elapsed
    seconds into a lock-protected histogram, so concurrent and nested sections
    from different threads never interfere.  ``totals`` and ``counts`` are
    derived views of that recorder's state.

    Example
    -------
    >>> t = Timer()
    >>> with t.section("quantize"):
    ...     pass
    >>> "quantize" in t.totals
    True
    """

    def __init__(self) -> None:
        self._recorder = _obs.Recorder()

    @property
    def totals(self) -> Dict[str, float]:
        """Accumulated seconds per section (a fresh snapshot dict)."""
        snapshot = self._recorder.snapshot()
        return {name: hist.sum for name, hist in snapshot.histograms.items()}

    @property
    def counts(self) -> Dict[str, int]:
        """Number of completed sections per name (a fresh snapshot dict)."""
        snapshot = self._recorder.snapshot()
        return {name: hist.count for name, hist in snapshot.histograms.items()}

    def section(self, name: str):
        """Return a context manager accumulating time under ``name``."""
        return self._recorder.timer(name)

    def total(self, name: str) -> float:
        """Total accumulated seconds for section ``name`` (0.0 if never entered)."""
        return self.totals.get(name, 0.0)

    def reset(self) -> None:
        """Clear all accumulated sections."""
        self._recorder.reset()

    def summary(self) -> str:
        """Human readable multi-line summary sorted by total time."""
        totals = self.totals
        counts = self.counts
        lines = []
        for name, total in sorted(totals.items(), key=lambda kv: -kv[1]):
            lines.append(f"{name:<30s} {total:10.4f} s  ({counts.get(name, 0)} calls)")
        return "\n".join(lines)


class _TimedCallable:
    """The callable :func:`timed` returns: per-thread ``last_elapsed``.

    Every call also observes into the *global* telemetry recorder under
    ``timed.<qualname>_seconds`` (a no-op when telemetry is disabled), so ad
    hoc ``@timed`` probes show up in ``--profile`` output alongside the
    built-in stages.
    """

    def __init__(self, func: Callable) -> None:
        self._func = func
        self._local = threading.local()
        self._metric = f"timed.{getattr(func, '__qualname__', repr(func))}_seconds"
        functools.update_wrapper(self, func)

    def __call__(self, *args, **kwargs):
        start = time.perf_counter()
        try:
            return self._func(*args, **kwargs)
        finally:
            elapsed = time.perf_counter() - start
            self._local.elapsed = elapsed
            _obs.get_recorder().observe(self._metric, elapsed)

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return functools.partial(self.__call__, obj)

    @property
    def last_elapsed(self) -> float:
        """Wall-clock seconds of the calling thread's most recent call."""
        return getattr(self._local, "elapsed", 0.0)


def timed(func: Callable) -> Callable:
    """Decorator attaching the last call's wall-clock time as ``.last_elapsed``.

    ``last_elapsed`` is tracked per thread: a call finishing on one scheduler
    worker no longer overwrites the value another thread is about to read.
    Threads that have not called the function yet read ``0.0``.
    """
    return _TimedCallable(func)
