"""Minimal logging configuration for the library.

The library never configures the root logger; it only attaches a
``NullHandler`` so applications embedding it stay in control of log output.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_BASE_NAME = "repro"

logging.getLogger(_BASE_NAME).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a child logger under the ``repro`` namespace.

    Parameters
    ----------
    name:
        Dotted suffix (e.g. ``"sz.pipeline"``).  ``None`` returns the base
        library logger.
    """
    if name is None or name == _BASE_NAME:
        return logging.getLogger(_BASE_NAME)
    if name.startswith(_BASE_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_BASE_NAME}.{name}")
