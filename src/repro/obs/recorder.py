"""Thread-safe telemetry recorder: counters, gauges, histograms, trace spans.

One :class:`Recorder` accumulates every metric the stack emits; a module-level
registry (:func:`get_recorder` / :func:`set_recorder` / :func:`enable` /
:func:`disable`) decides whether that recorder is a real one or the
:class:`NullRecorder` — a true no-op whose methods do nothing, so instrumented
hot paths cost a couple of attribute lookups when telemetry is off.  Telemetry
is enabled through the API, the ``REPRO_TELEMETRY`` environment variable
(checked at import), or the ``repro`` CLI's global ``--profile`` flag.

Metric kinds
------------
- **Counters** (:meth:`Recorder.count`): monotonically growing totals — bytes
  read, chunks decoded, cache hits.  Exact under concurrency.
- **Gauges** (:meth:`Recorder.gauge`): last-write-wins point-in-time values —
  cache occupancy.
- **Histograms** (:meth:`Recorder.observe`): log2-bucketed latency/size
  distributions with exact ``count``/``sum``/``min``/``max``; buckets make
  p50/p95 estimation cheap without storing samples.
- **Spans** (:meth:`Recorder.span`): nestable wall-clock intervals, recorded
  with thread/process ids for Chrome-trace timeline export and *also* folded
  into the histogram of the same name, so every span shows up in the stage
  table.  :meth:`Recorder.timer` is the histogram-only variant for hot paths
  that do not need a timeline entry.

Snapshots (:meth:`Recorder.snapshot`) are plain-dataclass
:class:`TelemetrySnapshot` objects: picklable (process workers ship their
deltas back with task results) and mergeable (:meth:`TelemetrySnapshot.merge`
adds counters/histograms and concatenates spans), which is how the
:class:`~repro.parallel.engine.ChunkScheduler` aggregates worker telemetry in
the parent.

Span timestamps come from ``time.perf_counter()``; on Linux that is
``CLOCK_MONOTONIC``, which is system-wide, so spans shipped from forked worker
processes land on the same timeline as the parent's.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "Histogram",
    "NullRecorder",
    "Recorder",
    "SpanRecord",
    "TelemetrySnapshot",
    "count",
    "disable",
    "enable",
    "enabled",
    "get_recorder",
    "observe",
    "set_recorder",
    "span",
    "timer",
]

#: Finest histogram bucket boundary (seconds / units).  Values at or below it
#: land in bucket 0; bucket ``i`` covers ``(RESOLUTION * 2**(i-1), RESOLUTION * 2**i]``.
BUCKET_RESOLUTION = 1e-6

#: Spans kept per recorder; beyond this they are dropped (and counted under
#: the ``obs.spans_dropped`` counter) so a long soak cannot grow memory
#: without bound.
MAX_SPANS = 100_000


def bucket_index(value: float) -> int:
    """Log2 bucket index of ``value`` (0 for values <= :data:`BUCKET_RESOLUTION`)."""
    if value <= BUCKET_RESOLUTION:
        return 0
    return max(0, math.ceil(math.log2(value / BUCKET_RESOLUTION)))


def bucket_upper_bound(index: int) -> float:
    """Inclusive upper bound of bucket ``index``."""
    return BUCKET_RESOLUTION * (2.0 ** index)


@dataclass
class Histogram:
    """Log2-bucketed distribution with exact count/sum/min/max.

    ``buckets`` maps bucket index to observation count; quantiles are
    estimated from bucket upper bounds (an over-estimate by at most 2x, which
    is what log-bucketing trades for O(1) memory).
    """

    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = 0.0
    buckets: Dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (bucket upper bound; exact min/max at 0/1)."""
        if not self.count:
            return 0.0
        if q <= 0:
            return self.min
        if q >= 1:
            return self.max
        target = q * self.count
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                return min(bucket_upper_bound(index), self.max)
        return self.max  # pragma: no cover - float edge

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "buckets": {str(index): n for index, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Histogram":
        hist = cls(
            count=int(data["count"]),
            sum=float(data["sum"]),
            min=float(data["min"]) if int(data["count"]) else math.inf,
            max=float(data["max"]),
            buckets={int(index): int(n) for index, n in data.get("buckets", {}).items()},
        )
        return hist


@dataclass
class SpanRecord:
    """One completed trace span (Chrome-trace ``"X"`` event shape)."""

    name: str
    start: float  #: perf_counter seconds at entry
    duration: float  #: seconds
    pid: int
    tid: int
    depth: int = 0  #: nesting depth within its thread at entry
    args: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "depth": self.depth,
            "args": self.args,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SpanRecord":
        return cls(
            name=str(data["name"]),
            start=float(data["start"]),
            duration=float(data["duration"]),
            pid=int(data["pid"]),
            tid=int(data["tid"]),
            depth=int(data.get("depth", 0)),
            args=dict(data.get("args", {})),
        )


#: JSON schema tag for serialized snapshots (``--profile-json``, bench files).
SNAPSHOT_SCHEMA = "repro-telemetry/1"


@dataclass
class TelemetrySnapshot:
    """Immutable-by-convention copy of a recorder's state.

    Plain dicts and dataclasses throughout: picklable (ships across the
    process boundary with scheduler task results) and JSON-serialisable via
    :meth:`to_dict`.  :meth:`merge` folds another snapshot in, in place.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    spans: List[SpanRecord] = field(default_factory=list)

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Fold ``other`` into this snapshot (sums, bucket adds, span concat)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram(
                    count=hist.count, sum=hist.sum, min=hist.min, max=hist.max,
                    buckets=dict(hist.buckets),
                )
            else:
                mine.merge(hist)
        self.spans.extend(other.spans)
        return self

    def counter(self, name: str) -> float:
        """Value of one counter (0 when never incremented)."""
        return self.counters.get(name, 0)

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms or self.spans)

    def to_dict(self) -> Dict:
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.to_dict() for name, hist in sorted(self.histograms.items())
            },
            "spans": [span.to_dict() for span in self.spans],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TelemetrySnapshot":
        schema = data.get("schema", SNAPSHOT_SCHEMA)
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported telemetry snapshot schema {schema!r} "
                f"(this build reads {SNAPSHOT_SCHEMA!r})"
            )
        return cls(
            counters={str(k): v for k, v in data.get("counters", {}).items()},
            gauges={str(k): float(v) for k, v in data.get("gauges", {}).items()},
            histograms={
                str(k): Histogram.from_dict(v)
                for k, v in data.get("histograms", {}).items()
            },
            spans=[SpanRecord.from_dict(s) for s in data.get("spans", [])],
        )


class _SpanContext:
    """Context manager recording one span (and its histogram observation)."""

    __slots__ = ("_recorder", "_name", "_args", "_start", "_depth")

    def __init__(self, recorder: "Recorder", name: str, args: Dict) -> None:
        self._recorder = recorder
        self._name = name
        self._args = args

    def __enter__(self) -> "_SpanContext":
        local = self._recorder._span_local
        self._depth = getattr(local, "depth", 0)
        local.depth = self._depth + 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        self._recorder._span_local.depth = self._depth
        self._recorder._record_span(
            SpanRecord(
                name=self._name,
                start=self._start,
                duration=duration,
                pid=os.getpid(),
                tid=threading.get_ident(),
                depth=self._depth,
                args=self._args,
            )
        )
        self._recorder.observe(self._name, duration)


class _TimerContext:
    """Histogram-only timing context (no span record; for hot paths)."""

    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: "Recorder", name: str) -> None:
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._recorder.observe(self._name, time.perf_counter() - self._start)


class Recorder:
    """Accumulates telemetry; every method is safe to call from any thread."""

    enabled = True

    def __init__(self, max_spans: int = MAX_SPANS) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: List[SpanRecord] = []
        self._max_spans = int(max_spans)
        self._span_local = threading.local()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def span(self, name: str, **args) -> _SpanContext:
        """Context manager timing a nestable span named ``name``.

        The span lands in the trace export *and* in the histogram of the same
        name; ``args`` become Chrome-trace event arguments.
        """
        return _SpanContext(self, name, args)

    def timer(self, name: str) -> _TimerContext:
        """Context manager observing elapsed seconds into histogram ``name``."""
        return _TimerContext(self, name)

    def _record_span(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) >= self._max_spans:
                self._counters["obs.spans_dropped"] = (
                    self._counters.get("obs.spans_dropped", 0) + 1
                )
                return
            self._spans.append(record)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> float:
        """Current value of one counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def merge_snapshot(self, snapshot: TelemetrySnapshot) -> None:
        """Fold a (worker-shipped) snapshot into this recorder's state."""
        with self._lock:
            for name, value in snapshot.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(snapshot.gauges)
            for name, hist in snapshot.histograms.items():
                mine = self._histograms.get(name)
                if mine is None:
                    self._histograms[name] = Histogram(
                        count=hist.count, sum=hist.sum, min=hist.min, max=hist.max,
                        buckets=dict(hist.buckets),
                    )
                else:
                    mine.merge(hist)
            room = self._max_spans - len(self._spans)
            if len(snapshot.spans) > room:
                self._counters["obs.spans_dropped"] = (
                    self._counters.get("obs.spans_dropped", 0)
                    + len(snapshot.spans) - room
                )
            self._spans.extend(snapshot.spans[:room])

    def snapshot(self, reset: bool = False) -> TelemetrySnapshot:
        """Deep-copied snapshot of the current state; ``reset`` clears after."""
        with self._lock:
            snap = TelemetrySnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    name: Histogram(
                        count=h.count, sum=h.sum, min=h.min, max=h.max,
                        buckets=dict(h.buckets),
                    )
                    for name, h in self._histograms.items()
                },
                spans=list(self._spans),
            )
            if reset:
                self._counters.clear()
                self._gauges.clear()
                self._histograms.clear()
                self._spans.clear()
        return snap

    def reset(self) -> None:
        """Drop all accumulated state."""
        self.snapshot(reset=True)


class _NullContext:
    """Shared no-op context manager returned by :class:`NullRecorder`."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullRecorder:
    """The disabled recorder: every method is a no-op.

    Instrumented code may call any recording method unconditionally; with the
    null recorder installed the cost is one method call returning immediately
    (and a shared no-op context manager for :meth:`span` / :meth:`timer`).
    """

    enabled = False

    def count(self, name: str, value: float = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def span(self, name: str, **args) -> _NullContext:
        return _NULL_CONTEXT

    def timer(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def counter(self, name: str) -> float:
        return 0

    def snapshot(self, reset: bool = False) -> TelemetrySnapshot:
        return TelemetrySnapshot()

    def merge_snapshot(self, snapshot: TelemetrySnapshot) -> None:
        return None

    def reset(self) -> None:
        return None


# --------------------------------------------------------------------------- #
# module-level registry
# --------------------------------------------------------------------------- #
_NULL_RECORDER = NullRecorder()


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_TELEMETRY", "").strip().lower()
    return value not in ("", "0", "false", "off", "no")


_recorder = Recorder() if _env_enabled() else _NULL_RECORDER
_registry_lock = threading.Lock()


def get_recorder():
    """The currently installed recorder (the no-op one when disabled)."""
    return _recorder


def set_recorder(recorder):
    """Install ``recorder`` as the global recorder; returns the previous one."""
    global _recorder
    with _registry_lock:
        previous = _recorder
        _recorder = recorder
    return previous


def enabled() -> bool:
    """Whether the installed global recorder actually records."""
    return _recorder.enabled


def enable(recorder: Optional[Recorder] = None) -> Recorder:
    """Install a real recorder (keeping the current one if already enabled).

    Returns the active :class:`Recorder` so callers can snapshot it later.
    """
    global _recorder
    with _registry_lock:
        if recorder is not None:
            _recorder = recorder
        elif not _recorder.enabled:
            _recorder = Recorder()
        return _recorder


def disable() -> None:
    """Swap the no-op recorder back in (accumulated state is discarded)."""
    set_recorder(_NULL_RECORDER)


# Convenience delegates: one global lookup per call.  Hot loops should grab
# ``get_recorder()`` once instead.
def count(name: str, value: float = 1) -> None:
    """Add ``value`` to counter ``name`` on the global recorder."""
    _recorder.count(name, value)


def observe(name: str, value: float) -> None:
    """Record one observation into histogram ``name`` on the global recorder."""
    _recorder.observe(name, value)


def span(name: str, **args):
    """Nestable trace span on the global recorder (no-op when disabled)."""
    return _recorder.span(name, **args)


def timer(name: str):
    """Histogram-only timing context on the global recorder."""
    return _recorder.timer(name)
