"""repro.obs — the telemetry layer of the compression stack.

Counters, gauges, log-bucketed latency histograms and nestable trace spans
behind one module-level registry.  The default recorder is a true no-op;
enable collection with :func:`enable`, the ``REPRO_TELEMETRY`` environment
variable, or the ``repro`` CLI's global ``--profile`` flag.  Snapshots are
picklable and mergeable, so process workers ship their deltas back to the
parent (see :class:`~repro.parallel.engine.ChunkScheduler`).

See ``docs/observability.md`` for the recorder API, the metric naming scheme,
and the ``--profile`` / ``--profile-json`` / ``--trace`` walkthrough.
"""

from repro.obs.recorder import (
    Histogram,
    NullRecorder,
    Recorder,
    SpanRecord,
    TelemetrySnapshot,
    count,
    disable,
    enable,
    enabled,
    get_recorder,
    observe,
    set_recorder,
    span,
    timer,
)
from repro.obs.render import (
    format_stage_table,
    snapshot_to_json,
    write_chrome_trace,
    write_snapshot_json,
)

__all__ = [
    "Histogram",
    "NullRecorder",
    "Recorder",
    "SpanRecord",
    "TelemetrySnapshot",
    "count",
    "disable",
    "enable",
    "enabled",
    "format_stage_table",
    "get_recorder",
    "observe",
    "set_recorder",
    "snapshot_to_json",
    "span",
    "timer",
    "write_chrome_trace",
    "write_snapshot_json",
]
