"""Render telemetry snapshots: stage table, JSON dump, Chrome trace export.

Three consumers, three shapes:

- :func:`format_stage_table` — the human-readable table ``repro --profile``
  prints: histograms (stages) sorted by total time, then counters and gauges.
- :func:`snapshot_to_json` / :func:`write_snapshot_json` — the machine-readable
  dump behind ``--profile-json`` (schema ``repro-telemetry/1``, the same
  document the benchmark harness embeds in its ``BENCH_*.json`` files).
- :func:`write_chrome_trace` — ``--trace out.json``: Chrome-trace-format
  complete events (``ph: "X"``), one lane per (process, thread), loadable in
  ``chrome://tracing`` / Perfetto for timeline inspection of parallel reads.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Union

from repro.obs.recorder import TelemetrySnapshot

__all__ = [
    "format_stage_table",
    "snapshot_to_json",
    "write_snapshot_json",
    "write_chrome_trace",
]

PathLike = Union[str, os.PathLike]


def _human_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:7.2f} ms"
    return f"{seconds * 1e6:7.1f} us"


def _human_count(value: float) -> str:
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.3f}"


def format_stage_table(snapshot: TelemetrySnapshot, title: str = "telemetry") -> str:
    """Multi-line human-readable summary of one snapshot.

    Stages (histograms) are sorted by total accumulated time, counters and
    gauges alphabetically.  Returns ``""`` for an empty snapshot so callers
    can print unconditionally.
    """
    if snapshot.empty:
        return ""
    lines: List[str] = [f"== {title} =="]
    if snapshot.histograms:
        lines.append(
            f"{'stage':<44} {'calls':>8} {'total':>10} {'mean':>10} {'p95':>10} {'max':>10}"
        )
        ordered = sorted(
            snapshot.histograms.items(), key=lambda kv: -kv[1].sum
        )
        for name, hist in ordered:
            lines.append(
                f"{name:<44} {hist.count:>8} {_human_seconds(hist.sum):>10} "
                f"{_human_seconds(hist.mean):>10} {_human_seconds(hist.quantile(0.95)):>10} "
                f"{_human_seconds(hist.max):>10}"
            )
    if snapshot.counters:
        lines.append(f"{'counter':<44} {'value':>18}")
        for name in sorted(snapshot.counters):
            lines.append(f"{name:<44} {_human_count(snapshot.counters[name]):>18}")
    if snapshot.gauges:
        lines.append(f"{'gauge':<44} {'value':>18}")
        for name in sorted(snapshot.gauges):
            lines.append(f"{name:<44} {_human_count(snapshot.gauges[name]):>18}")
    if snapshot.spans:
        lines.append(f"spans recorded: {len(snapshot.spans)}")
    return "\n".join(lines)


def snapshot_to_json(snapshot: TelemetrySnapshot, indent: Optional[int] = 2) -> str:
    """The snapshot as a ``repro-telemetry/1`` JSON document."""
    return json.dumps(snapshot.to_dict(), indent=indent, sort_keys=True)


def write_snapshot_json(snapshot: TelemetrySnapshot, path: PathLike) -> None:
    """Write :func:`snapshot_to_json` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(snapshot_to_json(snapshot))
        fh.write("\n")


def chrome_trace_events(snapshot: TelemetrySnapshot) -> List[Dict]:
    """The snapshot's spans as Chrome-trace complete (``"X"``) events.

    Timestamps are microseconds relative to the earliest span, so the trace
    viewer opens at t=0 regardless of process uptime.
    """
    if not snapshot.spans:
        return []
    epoch = min(span.start for span in snapshot.spans)
    events: List[Dict] = []
    for span in snapshot.spans:
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ts": (span.start - epoch) * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": span.args,
            }
        )
    return events


def write_chrome_trace(snapshot: TelemetrySnapshot, path: PathLike) -> None:
    """Write the spans as a Chrome-trace JSON file (open in Perfetto)."""
    document = {
        "traceEvents": chrome_trace_events(snapshot),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
        fh.write("\n")
