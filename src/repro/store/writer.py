"""Streaming-append writer for ``XFA1`` archives.

:class:`ArchiveWriter` compresses each added field chunk-by-chunk (the chunk
grid comes from :func:`repro.parallel.blocks.plan_blocks`, the worker pool from
the shared :class:`~repro.parallel.engine.ChunkScheduler`) and appends the
payloads to the archive file as soon as they are ready — the scheduler's
windowed, in-order streaming is what keeps the full compressed archive out of
memory.  The JSON manifest and footer are written on :meth:`close`.

Error-bound semantics match :class:`~repro.parallel.executor.BlockParallelCompressor`:
a relative bound is resolved once against the *full* field, and every chunk is
compressed with the resulting absolute bound, so the stored field satisfies
exactly the same per-point guarantee as a single-shot compression.

Cross-field fields name previously written fields as anchors.  The writer
*reconstructs* each anchor chunk by decoding it from the archive (through the
shared :class:`~repro.store.reader.ChunkFetcher`), so compression sees the
exact arrays a reader will supply at decompression time.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.parallel.blocks import plan_blocks
from repro.parallel.engine import ChunkScheduler
from repro.store.cache import LRUChunkCache
from repro.store.codecs import codec_class, get_codec
from repro.store.manifest import (
    ArchiveError,
    ArchiveManifest,
    ChunkEntry,
    FieldEntry,
    pack_footer,
    pack_header,
)
from repro.store.reader import ChunkFetcher
from repro.sz.errors import ErrorBound

__all__ = ["ArchiveWriter"]

PathLike = Union[str, os.PathLike]

#: Default chunk edge length along every axis (clamped to the field size).
DEFAULT_CHUNK_EDGE = 64



class ArchiveWriter:
    """Write many named fields into one chunked archive file.

    Parameters
    ----------
    path:
        Destination file.  Created (parents included) on the first write.
    codec:
        Default codec name for :meth:`add_field` (``"sz"``, ``"zfp"``,
        ``"cross-field"``, ``"lossless"``, or anything registered via
        :func:`repro.store.register_codec`).
    error_bound:
        Default error bound for lossy codecs.
    chunk_shape:
        Default chunk tile; ``None`` uses 64 along every axis (clamped).
    max_workers / executor_kind:
        Worker-pool configuration for per-chunk compression, identical to
        :class:`~repro.parallel.executor.BlockParallelCompressor`.
    attrs:
        Free-form JSON-serialisable archive attributes (provenance, units, …).

    Examples
    --------
    >>> from repro.store import ArchiveWriter, ArchiveReader  # doctest: +SKIP
    >>> with ArchiveWriter("snapshot.xfa") as writer:  # doctest: +SKIP
    ...     writer.add_field("T", temperature)
    ...     writer.add_field("RH", humidity, codec="cross-field", anchors=("T",))
    """

    def __init__(
        self,
        path: PathLike,
        codec: str = "sz",
        error_bound: ErrorBound = ErrorBound.relative(1e-3),
        chunk_shape: Optional[Sequence[int]] = None,
        max_workers: Optional[int] = None,
        executor_kind: str = "thread",
        attrs: Optional[Dict] = None,
    ) -> None:
        if not isinstance(error_bound, ErrorBound):
            raise TypeError("error_bound must be an ErrorBound instance")
        self.path = Path(path)
        self.default_codec = codec
        self.default_error_bound = error_bound
        self.default_chunk_shape = tuple(int(c) for c in chunk_shape) if chunk_shape else None
        self.max_workers = max_workers
        self.executor_kind = executor_kind
        if executor_kind == "process":
            # chunk encodes close over the input array and the shared fetcher
            raise ValueError(
                "archive writes support executor_kind 'thread' or 'serial' "
                "(chunk encodes share one file handle and anchor cache)"
            )
        # validates jobs/kind eagerly, before any file is created
        self._scheduler = ChunkScheduler(jobs=max_workers, executor_kind=executor_kind)
        attrs = dict(attrs or {})
        try:
            # sort_keys matches the manifest serialization in close(), so
            # non-string keys fail here too, before any compression work
            json.dumps(attrs, sort_keys=True)
        except TypeError as exc:
            raise TypeError(f"attrs must be JSON-serialisable: {exc}") from exc
        self.manifest = ArchiveManifest(attrs=attrs)
        self._fh = None
        self._offset = 0
        self._closed = False
        self._aborted = False
        # All writes go to a uniquely named sibling temp file (created in
        # _ensure_open) that is atomically renamed over `path` on close(): a
        # failed or killed pack never destroys a previously valid archive at
        # the destination, and concurrent packs cannot clobber each other's
        # in-progress files (last close wins the rename).
        self._tmp_path: Optional[Path] = None
        # Anchor reconstruction decodes chunks we just wrote; a small cache
        # keeps repeated anchor use (several cross-field targets sharing
        # anchors) from re-decoding the same chunks.
        self._fetcher: Optional[ChunkFetcher] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_open(self) -> None:
        if self._closed:
            raise ArchiveError("archive writer is closed")
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # O_EXCL gives each writer a unique temp file (concurrent packs to
            # one destination cannot clobber each other), and mode 0666 lets
            # the kernel apply the process umask atomically — no mkstemp-style
            # private 0600 and no global-umask read needed.
            for attempt in range(1000):
                candidate = self.path.with_name(f"{self.path.name}.{os.getpid()}.{attempt}.tmp")
                try:
                    fd = os.open(candidate, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o666)
                    break
                except FileExistsError:
                    continue
            else:  # pragma: no cover - 1000 stale temp files
                raise ArchiveError(f"could not create a temp file next to {self.path}")
            self._tmp_path = candidate
            self._fh = os.fdopen(fd, "w+b")
            header = pack_header()
            self._fh.write(header)
            self._offset = len(header)
            self._fetcher = ChunkFetcher(
                self._fh, self.manifest.__getitem__, LRUChunkCache(max_bytes=32 * 1024 * 1024)
            )

    def close(self) -> Path:
        """Finalize the archive (manifest + footer), move it into place atomically.

        Raises :class:`ArchiveError` if the writer was aborted (an exception
        inside the ``with`` block or a failed finalize): nothing was published,
        so returning the path would be a false success signal.
        """
        if self._closed:
            if self._aborted:
                raise ArchiveError(
                    f"archive writer for {self.path} was aborted; no archive was published"
                )
            return self.path
        self._ensure_open()
        try:
            manifest_bytes, crc = self.manifest.checked_json()
            self._fh.seek(self._offset)
            self._fh.write(manifest_bytes)
            self._fh.write(pack_footer(self._offset, len(manifest_bytes), crc))
            self._fh.close()
            self._fh = None
            os.replace(self._tmp_path, self.path)
        except BaseException:
            # nothing is published on a failed finalize: drop the temp file
            # and the handle instead of leaking them
            self._aborted = True
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            self._tmp_path.unlink(missing_ok=True)
            raise
        finally:
            self._fetcher = None  # release the anchor-chunk cache with the handle
            self._closed = True
        return self.path

    def __enter__(self) -> "ArchiveWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            # Abandon the half-written temp file (any pre-existing archive at
            # the destination is untouched) and mark the writer closed so a
            # later close() cannot publish the incomplete manifest.
            self._closed = True
            self._aborted = True
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            self._fetcher = None
            if self._tmp_path is not None:
                self._tmp_path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def _resolve_chunk_shape(
        self, shape: Tuple[int, ...], chunk_shape: Optional[Sequence[int]]
    ) -> Tuple[int, ...]:
        resolved = (
            tuple(int(c) for c in chunk_shape)
            if chunk_shape is not None
            else self.default_chunk_shape
        )
        if resolved is None:
            return tuple(min(DEFAULT_CHUNK_EDGE, s) for s in shape)
        if len(resolved) != len(shape):
            raise ArchiveError(
                f"chunk_shape rank {len(resolved)} does not match field rank {len(shape)}"
            )
        if any(c <= 0 for c in resolved):
            raise ArchiveError("chunk_shape entries must be positive")
        return tuple(min(c, s) for c, s in zip(resolved, shape))

    def _validate_anchors(
        self, anchors: Sequence[str], shape: Tuple[int, ...], chunk_shape: Tuple[int, ...]
    ) -> Tuple[str, ...]:
        anchors = tuple(anchors)
        for anchor in anchors:
            if anchor not in self.manifest:
                raise ArchiveError(
                    f"anchor field {anchor!r} must be added to the archive before its target"
                )
            entry = self.manifest[anchor]
            if entry.shape != shape:
                raise ArchiveError(
                    f"anchor {anchor!r} shape {entry.shape} does not match target shape {shape}"
                )
            if entry.chunk_shape != chunk_shape:
                raise ArchiveError(
                    f"anchor {anchor!r} chunk grid {entry.chunk_shape} does not match "
                    f"target chunk grid {chunk_shape} (aligned chunks are required)"
                )
        return anchors

    def add_field(
        self,
        name: str,
        data: np.ndarray,
        codec: Optional[str] = None,
        error_bound: Optional[ErrorBound] = None,
        chunk_shape: Optional[Sequence[int]] = None,
        anchors: Sequence[str] = (),
        **codec_params,
    ) -> FieldEntry:
        """Compress ``data`` chunk-by-chunk and append it under ``name``.

        ``anchors`` names previously added fields (same shape and chunk grid)
        whose reconstructed chunks feed codecs with ``requires_anchors`` (the
        cross-field codec).  Extra keyword arguments are forwarded to the codec
        constructor and recorded in the manifest.
        """
        self._ensure_open()
        if name in self.manifest:
            raise ArchiveError(f"duplicate field name {name!r}")
        data = np.asarray(data)
        if data.dtype == object:
            raise TypeError(f"field {name!r} must be numeric, got object dtype")
        if data.ndim == 0:
            raise ArchiveError(
                f"field {name!r} must be at least 1-dimensional, got a scalar"
            )
        if data.size == 0:
            raise ArchiveError(f"field {name!r} must not be empty")
        data = np.ascontiguousarray(data)

        codec_name = codec if codec is not None else self.default_codec
        cls = codec_class(codec_name)
        resolved_chunk_shape = self._resolve_chunk_shape(data.shape, chunk_shape)
        if cls.requires_anchors and not anchors:
            raise ArchiveError(f"codec {codec_name!r} requires at least one anchor field")
        if anchors and not cls.requires_anchors:
            raise ArchiveError(f"codec {codec_name!r} does not accept anchor fields")
        anchors = self._validate_anchors(anchors, data.shape, resolved_chunk_shape)

        eb = error_bound if error_bound is not None else self.default_error_bound
        if not isinstance(eb, ErrorBound):
            raise TypeError("error_bound must be an ErrorBound instance")
        abs_eb: Optional[float] = None
        if not cls.is_lossless:
            # Resolve relative bounds on the FULL field so every chunk uses the
            # identical absolute bound (single-shot semantics).
            abs_eb = eb.resolve(data)
            codec_params = dict(codec_params, error_bound=ErrorBound.absolute(abs_eb))
        instance = get_codec(codec_name, **codec_params)

        specs = plan_blocks(data.shape, resolved_chunk_shape)
        if anchors:
            # Anchor chunks are reconstructed per target chunk, on demand —
            # the fetcher serialises only its file reads and cache bookkeeping
            # internally, so anchor decodes and target encodes both run in
            # parallel while memory stays bounded by the in-flight workers
            # plus the fetcher's cache budget, not the whole anchor fields.
            def encode(spec):
                anchor_arrays = [self._fetcher.get_chunk(a, spec.index) for a in anchors]
                return instance.encode(spec.extract(data), anchors=anchor_arrays)

        else:

            def encode(spec):
                return instance.encode(spec.extract(data))

        entry = FieldEntry(
            name=name,
            dtype=str(data.dtype),
            shape=tuple(data.shape),
            chunk_shape=resolved_chunk_shape,
            codec=cls.name,
            codec_params=instance.params(),
            anchors=anchors,
            abs_error_bound=abs_eb,
            error_bound=None if cls.is_lossless else eb.to_dict(),
            original_nbytes=int(data.nbytes),
        )
        # Stream each payload to disk as it is produced (in chunk order):
        # memory holds only results completed ahead of the write position,
        # never the field's whole compressed output.  Appends share the file
        # handle with the fetcher's anchor reads, hence the io_lock.
        payloads = self._scheduler.imap(
            encode, specs, context=lambda i, spec: f"field {name!r} chunk {i}"
        )
        for spec, payload in zip(specs, payloads):
            entry.chunks.append(
                ChunkEntry(
                    index=spec.index,
                    start=tuple(s.start for s in spec.slices),
                    stop=tuple(s.stop for s in spec.slices),
                    offset=self._offset,
                    length=len(payload),
                    crc32=zlib.crc32(payload) & 0xFFFFFFFF,
                )
            )
            with self._fetcher.io_lock:
                self._fh.seek(self._offset)
                self._fh.write(payload)
            self._offset += len(payload)
        self.manifest.add(entry)
        return entry

    def add_fieldset(
        self,
        fieldset,
        codec: Optional[str] = None,
        error_bound: Optional[ErrorBound] = None,
        chunk_shape: Optional[Sequence[int]] = None,
        cross_field: Optional[Dict[str, Sequence[str]]] = None,
        **codec_params,
    ) -> Dict[str, FieldEntry]:
        """Add every field of a :class:`~repro.data.fields.FieldSet`.

        ``cross_field`` maps target field names to anchor-name sequences; the
        targets are written *after* all other fields (anchors must exist
        first) with the cross-field codec, everything else uses ``codec``.
        Extra keyword arguments (an ``entropy`` mode from the
        :mod:`repro.encoding.entropy` registry, a ``backend`` name, ...) are
        forwarded to every field's codec constructor, exactly as
        :meth:`add_field` forwards its own.
        """
        cross_field = dict(cross_field or {})
        for target, target_anchors in cross_field.items():
            if target not in fieldset:
                raise ArchiveError(f"cross-field target {target!r} is not in the fieldset")
            for anchor in target_anchors:
                if anchor not in fieldset:
                    raise ArchiveError(f"cross-field anchor {anchor!r} is not in the fieldset")
                if anchor in cross_field:
                    raise ArchiveError(
                        f"anchor {anchor!r} is itself a cross-field target; anchors must be "
                        "stored with a non-anchored codec"
                    )
        entries: Dict[str, FieldEntry] = {}
        for field in fieldset:
            if field.name in cross_field:
                continue
            entries[field.name] = self.add_field(
                field.name,
                field.data,
                codec=codec,
                error_bound=error_bound,
                chunk_shape=chunk_shape,
                **codec_params,
            )
        for target, target_anchors in cross_field.items():
            entries[target] = self.add_field(
                target,
                fieldset[target].data,
                codec="cross-field",
                error_bound=error_bound,
                chunk_shape=chunk_shape,
                anchors=tuple(target_anchors),
                **codec_params,
            )
        return entries
