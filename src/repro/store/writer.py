"""Streaming-append writer for ``XFA1`` archives.

:class:`ArchiveWriter` compresses each added field chunk-by-chunk (the chunk
grid comes from :func:`repro.parallel.blocks.plan_blocks`, the worker pool from
the shared :class:`~repro.parallel.engine.ChunkScheduler`) and appends the
payloads to the archive file as soon as they are ready — the scheduler's
windowed, in-order streaming is what keeps the full compressed archive out of
memory.  The JSON manifest and footer are written on :meth:`close`.

Two lifecycle modes:

- ``mode="w"`` (default): all writes go to a temp file that is atomically
  renamed over the destination on :meth:`close` — a failed pack never
  destroys an existing archive.
- ``mode="a"``: reopen an existing archive for appending.  The manifest is
  loaded and validated up front, new chunk payloads are appended *after* the
  current footer (the superseded manifest stays in place as a recovery
  point), and every :meth:`flush` publishes a fresh manifest + footer at the
  new end of file.  A crash between flushes leaves all previously flushed
  state recoverable (``recover=True`` here, or
  ``ArchiveReader(path, recover=True)``).

Time-stepped streaming sits on top of append mode: :meth:`add_timestep` adds
one fieldset as a timestep (stored names ``{field}@{step}``), records it in
the manifest's timestep index, and — per the
:class:`~repro.store.temporal.TemporalSpec` policy — stores each field either
independently or as a ``temporal-delta`` residual against its decoded previous
step, with an independent anchor step every ``anchor_every`` occurrences.

Error-bound semantics match :class:`~repro.parallel.executor.BlockParallelCompressor`:
a relative bound is resolved once against the *full* field, and every chunk is
compressed with the resulting absolute bound, so the stored field satisfies
exactly the same per-point guarantee as a single-shot compression.

Cross-field fields name previously written fields as anchors.  The writer
*reconstructs* each anchor chunk by decoding it from the archive (through the
shared :class:`~repro.store.reader.ChunkFetcher`), so compression sees the
exact arrays a reader will supply at decompression time.
"""

from __future__ import annotations

import json
import os
import time as _time
import zlib
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs import recorder as _obs
from repro.parallel.blocks import plan_blocks
from repro.parallel.engine import ChunkScheduler
from repro.store.bytestore import FileByteStore
from repro.store.cache import LRUChunkCache
from repro.store.codecs import codec_class, get_codec
from repro.store.manifest import (
    FOOTER_SIZE,
    ArchiveError,
    ArchiveManifest,
    ChunkEntry,
    FieldEntry,
    TimestepEntry,
    pack_footer,
    pack_header,
    read_manifest,
    recover_manifest,
)
from repro.store.reader import ChunkFetcher
from repro.store.temporal import TemporalSpec
from repro.sz.errors import ErrorBound

__all__ = ["ArchiveWriter", "stored_field_name"]


def stored_field_name(name: str, step: int) -> str:
    """Manifest field-table name of base field ``name`` at timestep ``step``."""
    return f"{name}@{int(step)}"

PathLike = Union[str, os.PathLike]

#: Default chunk edge length along every axis (clamped to the field size).
DEFAULT_CHUNK_EDGE = 64



class ArchiveWriter:
    """Write many named fields into one chunked archive file.

    Parameters
    ----------
    path:
        Destination file.  Created (parents included) on the first write.
    codec:
        Default codec name for :meth:`add_field` (``"sz"``, ``"zfp"``,
        ``"cross-field"``, ``"lossless"``, or anything registered via
        :func:`repro.store.register_codec`).
    error_bound:
        Default error bound for lossy codecs.
    chunk_shape:
        Default chunk tile; ``None`` uses 64 along every axis (clamped).
    max_workers / executor_kind:
        Worker-pool configuration for per-chunk compression, identical to
        :class:`~repro.parallel.executor.BlockParallelCompressor`.
    attrs:
        Free-form JSON-serialisable archive attributes (provenance, units, …).
        In append mode they are merged into the existing attributes.
    mode:
        ``"w"`` writes a fresh archive (atomic temp + rename on close);
        ``"a"`` reopens an existing archive and appends — see the module
        docstring for the durability contract.
    recover:
        Append mode only: when the archive's newest footer is invalid (a
        previous append session crashed mid-write), scan backwards for the
        last fully flushed manifest and resume from there, truncating the
        torn tail.  Without it such archives are rejected with a clean
        :class:`ArchiveError`.

    Examples
    --------
    >>> from repro.store import ArchiveWriter, ArchiveReader  # doctest: +SKIP
    >>> with ArchiveWriter("snapshot.xfa") as writer:  # doctest: +SKIP
    ...     writer.add_field("T", temperature)
    ...     writer.add_field("RH", humidity, codec="cross-field", anchors=("T",))
    """

    def __init__(
        self,
        path: PathLike,
        codec: str = "sz",
        error_bound: ErrorBound = ErrorBound.relative(1e-3),
        chunk_shape: Optional[Sequence[int]] = None,
        max_workers: Optional[int] = None,
        executor_kind: str = "thread",
        attrs: Optional[Dict] = None,
        mode: str = "w",
        recover: bool = False,
    ) -> None:
        if not isinstance(error_bound, ErrorBound):
            raise TypeError("error_bound must be an ErrorBound instance")
        if mode not in ("w", "a"):
            raise ArchiveError(f"archive writer mode must be 'w' or 'a', got {mode!r}")
        self.path = Path(path)
        self.mode = mode
        self.default_codec = codec
        self.default_error_bound = error_bound
        self.default_chunk_shape = tuple(int(c) for c in chunk_shape) if chunk_shape else None
        self.max_workers = max_workers
        self.executor_kind = executor_kind
        if executor_kind == "process":
            # chunk encodes close over the input array and the shared fetcher
            raise ValueError(
                "archive writes support executor_kind 'thread' or 'serial' "
                "(chunk encodes share one file handle and anchor cache)"
            )
        # validates jobs/kind eagerly, before any file is created
        self._scheduler = ChunkScheduler(jobs=max_workers, executor_kind=executor_kind)
        attrs = dict(attrs or {})
        try:
            # sort_keys matches the manifest serialization in flush(), so
            # non-string keys fail here too, before any compression work
            json.dumps(attrs, sort_keys=True)
        except TypeError as exc:
            raise TypeError(f"attrs must be JSON-serialisable: {exc}") from exc
        self.manifest = ArchiveManifest(attrs=attrs)
        self._fh = None
        self._offset = 0
        self._closed = False
        self._aborted = False
        # Offset one past the last durably published footer (append mode) —
        # the rollback point when an append session aborts.  None until the
        # first flush of a fresh archive.
        self._published_end: Optional[int] = None
        # Whether manifest state has changed since the last flush.
        self._dirty = False
        # All writes in "w" mode go to a uniquely named sibling temp file
        # (created in _ensure_open) that is atomically renamed over `path` on
        # close(): a failed or killed pack never destroys a previously valid
        # archive at the destination, and concurrent packs cannot clobber
        # each other's in-progress files (last close wins the rename).
        self._tmp_path: Optional[Path] = None
        # Anchor reconstruction decodes chunks we just wrote; a small cache
        # keeps repeated anchor use (several cross-field targets sharing
        # anchors, temporal-delta chains) from re-decoding the same chunks.
        self._fetcher: Optional[ChunkFetcher] = None
        # Lazy {base field: (latest stored name, occurrence count)} map; see
        # _field_history.
        self._history: Optional[Dict[str, Tuple[str, int]]] = None
        if mode == "a":
            # Open eagerly: "reopen and validate the manifest" should fail at
            # construction, not at the first add.
            self._open_append(attrs, recover)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _open_append(self, attrs: Dict, recover: bool) -> None:
        if not self.path.exists():
            raise ArchiveError(
                f"append mode needs an existing archive at {self.path} "
                "(use mode='w' to create one)"
            )
        fh = open(self.path, "r+b")
        try:
            try:
                self.manifest, _, published_end = read_manifest(fh)
            except ArchiveError:
                if not recover:
                    raise
                # torn tail from a crashed append: resume from the newest
                # fully flushed manifest and drop the garbage after it
                self.manifest, published_end = recover_manifest(fh)
                fh.truncate(published_end)
            fh.seek(0, os.SEEK_END)
            file_size = fh.tell()
            for entry in self.manifest.fields.values():
                for chunk in entry.chunks:
                    if chunk.offset + chunk.length > file_size:
                        raise ArchiveError(
                            f"field {entry.name!r} chunk {chunk.index} extends past "
                            "the end of the file; archive is truncated"
                        )
        except BaseException:
            fh.close()
            raise
        self._fh = fh
        self._offset = file_size
        self._published_end = published_end
        if attrs:
            self.manifest.attrs.update(attrs)
            self._dirty = True
        # A borrowed store: the fetcher reads through the writer's own append
        # handle (its lock serialises anchor reads against payload writes) and
        # close() leaves the handle to the writer.
        self._fetcher = ChunkFetcher(
            FileByteStore(fh=self._fh),
            self.manifest.__getitem__,
            LRUChunkCache(max_bytes=32 * 1024 * 1024),
        )

    def _ensure_open(self) -> None:
        if self._closed:
            raise ArchiveError("archive writer is closed")
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # O_EXCL gives each writer a unique temp file (concurrent packs to
            # one destination cannot clobber each other), and mode 0666 lets
            # the kernel apply the process umask atomically — no mkstemp-style
            # private 0600 and no global-umask read needed.
            for attempt in range(1000):
                candidate = self.path.with_name(f"{self.path.name}.{os.getpid()}.{attempt}.tmp")
                try:
                    fd = os.open(candidate, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o666)
                    break
                except FileExistsError:
                    continue
            else:  # pragma: no cover - 1000 stale temp files
                raise ArchiveError(f"could not create a temp file next to {self.path}")
            self._tmp_path = candidate
            self._fh = os.fdopen(fd, "w+b")
            header = pack_header()
            self._fh.write(header)
            self._offset = len(header)
            self._fetcher = ChunkFetcher(
                FileByteStore(fh=self._fh),
                self.manifest.__getitem__,
                LRUChunkCache(max_bytes=32 * 1024 * 1024),
            )

    def flush(self) -> Path:
        """Write the current manifest + footer at the end of the file.

        In append mode this is the durability point: everything added so far
        becomes reachable by a plain footer-first open, and survives any later
        crash (the flushed manifest is a recovery point for
        :func:`~repro.store.manifest.recover_manifest`).  In write mode it
        checkpoints the temp file; publication still happens via the atomic
        rename in :meth:`close`.  A no-op when nothing changed since the last
        flush.
        """
        self._ensure_open()
        if not self._dirty and self._published_end is not None:
            return self.path
        manifest_bytes, crc = self.manifest.checked_json()
        lock = self._fetcher.io_lock
        with _obs.timer("store.write.flush_seconds"):
            with lock:
                self._fh.seek(self._offset)
                self._fh.write(manifest_bytes)
                self._fh.write(pack_footer(self._offset, len(manifest_bytes), crc))
                self._fh.flush()
                if self.mode == "a":
                    os.fsync(self._fh.fileno())
        _obs.count("store.write.manifest_publications")
        _obs.count("store.write.manifest_bytes", len(manifest_bytes))
        # later appends go *after* the footer we just wrote, so the published
        # manifest is never overwritten by in-flight payload bytes
        self._published_end = self._offset + len(manifest_bytes) + FOOTER_SIZE
        self._offset = self._published_end
        self._dirty = False
        return self.path

    def close(self) -> Path:
        """Finalize the archive and (in write mode) move it into place atomically.

        Raises :class:`ArchiveError` if the writer was aborted (an exception
        inside the ``with`` block or a failed finalize): in write mode nothing
        was published; in append mode the archive was rolled back to its last
        flushed state.
        """
        if self._closed:
            if self._aborted:
                raise ArchiveError(
                    f"archive writer for {self.path} was aborted; "
                    + (
                        "the archive was rolled back to its last flushed state"
                        if self.mode == "a"
                        else "no archive was published"
                    )
                )
            return self.path
        self._ensure_open()
        try:
            self.flush()
            self._fh.close()
            self._fh = None
            if self.mode == "w":
                os.replace(self._tmp_path, self.path)
        except BaseException:
            self._aborted = True
            self._rollback()
            raise
        finally:
            self._fetcher = None  # release the anchor-chunk cache with the handle
            self._closed = True
        return self.path

    def _rollback(self) -> None:
        """Abandon unpublished work: drop the temp file (w) or truncate (a)."""
        if self._fh is not None:
            try:
                if self.mode == "a" and self._published_end is not None:
                    # restore the archive to its last durably flushed state so
                    # a plain footer-first open keeps working
                    self._fh.truncate(self._published_end)
            finally:
                self._fh.close()
                self._fh = None
        if self.mode == "w" and self._tmp_path is not None:
            # nothing is published on a failed pack: drop the temp file
            # (any pre-existing archive at the destination is untouched)
            self._tmp_path.unlink(missing_ok=True)

    def __enter__(self) -> "ArchiveWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            # Mark the writer closed so a later close() cannot publish the
            # incomplete state, then roll back to the last durable point.
            self._closed = True
            self._aborted = True
            self._rollback()
            self._fetcher = None

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def _resolve_chunk_shape(
        self, shape: Tuple[int, ...], chunk_shape: Optional[Sequence[int]]
    ) -> Tuple[int, ...]:
        resolved = (
            tuple(int(c) for c in chunk_shape)
            if chunk_shape is not None
            else self.default_chunk_shape
        )
        if resolved is None:
            return tuple(min(DEFAULT_CHUNK_EDGE, s) for s in shape)
        if len(resolved) != len(shape):
            raise ArchiveError(
                f"chunk_shape rank {len(resolved)} does not match field rank {len(shape)}"
            )
        if any(c <= 0 for c in resolved):
            raise ArchiveError("chunk_shape entries must be positive")
        return tuple(min(c, s) for c, s in zip(resolved, shape))

    def _validate_anchors(
        self, anchors: Sequence[str], shape: Tuple[int, ...], chunk_shape: Tuple[int, ...]
    ) -> Tuple[str, ...]:
        anchors = tuple(anchors)
        for anchor in anchors:
            if anchor not in self.manifest:
                raise ArchiveError(
                    f"anchor field {anchor!r} must be added to the archive before its target"
                )
            entry = self.manifest[anchor]
            if entry.shape != shape:
                raise ArchiveError(
                    f"anchor {anchor!r} shape {entry.shape} does not match target shape {shape}"
                )
            if entry.chunk_shape != chunk_shape:
                raise ArchiveError(
                    f"anchor {anchor!r} chunk grid {entry.chunk_shape} does not match "
                    f"target chunk grid {chunk_shape} (aligned chunks are required)"
                )
        return anchors

    def add_field(
        self,
        name: str,
        data: np.ndarray,
        codec: Optional[str] = None,
        error_bound: Optional[ErrorBound] = None,
        chunk_shape: Optional[Sequence[int]] = None,
        anchors: Sequence[str] = (),
        **codec_params,
    ) -> FieldEntry:
        """Compress ``data`` chunk-by-chunk and append it under ``name``.

        ``anchors`` names previously added fields (same shape and chunk grid)
        whose reconstructed chunks feed codecs with ``requires_anchors`` (the
        cross-field codec).  Extra keyword arguments are forwarded to the codec
        constructor and recorded in the manifest.
        """
        self._ensure_open()
        if name in self.manifest:
            raise ArchiveError(f"duplicate field name {name!r}")
        data = np.asarray(data)
        if data.dtype == object:
            raise TypeError(f"field {name!r} must be numeric, got object dtype")
        if data.ndim == 0:
            raise ArchiveError(
                f"field {name!r} must be at least 1-dimensional, got a scalar"
            )
        if data.size == 0:
            raise ArchiveError(f"field {name!r} must not be empty")
        data = np.ascontiguousarray(data)

        codec_name = codec if codec is not None else self.default_codec
        cls = codec_class(codec_name)
        resolved_chunk_shape = self._resolve_chunk_shape(data.shape, chunk_shape)
        if cls.requires_anchors and not anchors:
            raise ArchiveError(f"codec {codec_name!r} requires at least one anchor field")
        if anchors and not cls.requires_anchors:
            raise ArchiveError(f"codec {codec_name!r} does not accept anchor fields")
        anchors = self._validate_anchors(anchors, data.shape, resolved_chunk_shape)

        eb = error_bound if error_bound is not None else self.default_error_bound
        if not isinstance(eb, ErrorBound):
            raise TypeError("error_bound must be an ErrorBound instance")
        abs_eb: Optional[float] = None
        if not cls.is_lossless:
            # Resolve relative bounds on the FULL field so every chunk uses the
            # identical absolute bound (single-shot semantics).
            abs_eb = eb.resolve(data)
            codec_params = dict(codec_params, error_bound=ErrorBound.absolute(abs_eb))
        instance = get_codec(codec_name, **codec_params)

        specs = plan_blocks(data.shape, resolved_chunk_shape)
        recorder = _obs.get_recorder()

        # Anchor chunks are reconstructed per target chunk, on demand — the
        # fetcher serialises only its file reads and cache bookkeeping
        # internally, so anchor decodes and target encodes both run in
        # parallel while memory stays bounded by the in-flight workers plus
        # the fetcher's cache budget, not the whole anchor fields.
        def encode(spec):
            chunk_data = spec.extract(data)
            anchor_arrays = (
                [self._fetcher.get_chunk(a, spec.index) for a in anchors]
                if anchors
                else None
            )
            encode_start = _time.perf_counter()
            if anchor_arrays is not None:
                payload = instance.encode(chunk_data, anchors=anchor_arrays)
            else:
                payload = instance.encode(chunk_data)
            encode_seconds = _time.perf_counter() - encode_start
            recorder.observe("store.write.encode_seconds", encode_seconds)
            if recorder.enabled:
                recorder.observe(f"store.codec.{cls.name}.encode_seconds", encode_seconds)
                recorder.count(f"store.codec.{cls.name}.bytes_in", int(chunk_data.nbytes))
                recorder.count(f"store.codec.{cls.name}.bytes_out", len(payload))
            return payload

        entry = FieldEntry(
            name=name,
            dtype=str(data.dtype),
            shape=tuple(data.shape),
            chunk_shape=resolved_chunk_shape,
            codec=cls.name,
            codec_params=instance.params(),
            anchors=anchors,
            abs_error_bound=abs_eb,
            error_bound=None if cls.is_lossless else eb.to_dict(),
            original_nbytes=int(data.nbytes),
        )
        # Stream each payload to disk as it is produced (in chunk order):
        # memory holds only results completed ahead of the write position,
        # never the field's whole compressed output.  Appends share the file
        # handle with the fetcher's anchor reads, hence the io_lock.
        with _obs.span(
            "store.write.field_seconds", field=name, codec=cls.name, chunks=len(specs)
        ):
            payloads = self._scheduler.imap(
                encode, specs, context=lambda i, spec: f"field {name!r} chunk {i}"
            )
            for spec, payload in zip(specs, payloads):
                entry.chunks.append(
                    ChunkEntry(
                        index=spec.index,
                        start=tuple(s.start for s in spec.slices),
                        stop=tuple(s.stop for s in spec.slices),
                        offset=self._offset,
                        length=len(payload),
                        crc32=zlib.crc32(payload) & 0xFFFFFFFF,
                    )
                )
                io_start = _time.perf_counter()
                with self._fetcher.io_lock:
                    self._fh.seek(self._offset)
                    self._fh.write(payload)
                recorder.observe("store.write.io_seconds", _time.perf_counter() - io_start)
                recorder.count("store.write.bytes_out", len(payload))
                self._offset += len(payload)
        self.manifest.add(entry)
        self._dirty = True
        return entry

    # ------------------------------------------------------------------ #
    # time-stepped streaming
    # ------------------------------------------------------------------ #
    def _field_history(self, name: str) -> Tuple[Optional[str], int]:
        """Latest stored name of base field ``name`` and its occurrence count.

        Backed by an incrementally maintained map (built lazily from the
        manifest, updated when a timestep commits), so long streaming
        sessions do not rescan the whole timestep index per field per step.
        """
        if self._history is None:
            history: Dict[str, Tuple[str, int]] = {}
            for ts in self.manifest.timesteps:
                for base, stored in ts.fields.items():
                    _, count = history.get(base, (None, 0))
                    history[base] = (stored, count + 1)
            self._history = history
        return self._history.get(name, (None, 0))

    def _recorded_temporal(self, name: str) -> Optional[TemporalSpec]:
        """The temporal spec of ``name``'s most recent timestep, if any.

        Only the *latest* occurrence counts: a step that stored the field
        without a spec (an explicit ``temporal={}`` opt-out, or a plain
        independent store) breaks the chain, so a later flagless append does
        not resurrect delta coding the user switched off.
        """
        for ts in reversed(self.manifest.timesteps):
            if name in ts.fields:
                spec = ts.temporal.get(name)
                return TemporalSpec.from_dict(spec) if spec is not None else None
        return None

    def _resolve_temporal(self, temporal, names) -> Dict[str, Optional[TemporalSpec]]:
        """Normalise the ``temporal`` argument into a per-field spec map.

        ``None`` means *continue what the archive records*: each field
        inherits the spec of its most recent timestep (so an append session
        keeps the anchor cadence it was started with); fields with no
        recorded spec stay independent.  Pass ``{}`` to explicitly disable
        temporal policy for every field.
        """
        if temporal is None:
            inherited: Dict[str, Optional[TemporalSpec]] = {}
            for name in names:
                recorded = self._recorded_temporal(name)
                if recorded is not None:
                    inherited[name] = recorded
            return inherited
        if isinstance(temporal, (TemporalSpec, str)):
            spec = TemporalSpec.coerce(temporal)
            return {name: spec for name in names}
        if isinstance(temporal, Mapping):
            if TemporalSpec.looks_like_spec(temporal):
                spec = TemporalSpec.from_dict(temporal)
                return {name: spec for name in names}
            resolved = {}
            for key, value in temporal.items():
                if key not in names:
                    raise ArchiveError(
                        f"temporal spec names unknown field {key!r}; "
                        f"timestep fields: {sorted(names)}"
                    )
                resolved[key] = TemporalSpec.coerce(value, context=f"field {key!r} temporal")
            return resolved
        raise ArchiveError(
            "temporal must be a TemporalSpec, a mode string, a spec dict, or a "
            f"{{field: spec}} mapping, got {type(temporal).__name__}"
        )

    def add_timestep(
        self,
        fields,
        step: Optional[int] = None,
        time: Optional[float] = None,
        codec: Optional[str] = None,
        error_bound: Optional[ErrorBound] = None,
        chunk_shape: Optional[Sequence[int]] = None,
        temporal=None,
        field_rules: Optional[Mapping[str, Mapping]] = None,
        flush: Optional[bool] = None,
        **codec_params,
    ) -> TimestepEntry:
        """Add one fieldset as timestep ``step`` and record it in the time index.

        ``fields`` is a :class:`~repro.data.fields.FieldSet` or a mapping of
        field name to array; every field is stored under ``{name}@{step}``.
        ``step`` defaults to one past the last recorded step (ids must be
        strictly increasing); ``time`` is a free-form wall-time tag.

        ``temporal`` selects the time coding: a
        :class:`~repro.store.temporal.TemporalSpec` (or its dict / mode-string
        form) applied to every field, or a ``{field: spec}`` mapping.  With
        ``mode="delta"``, occurrence ``0, K, 2K, ...`` of a field is an
        independent *anchor* step and everything in between is stored with the
        ``temporal-delta`` codec against the field's decoded previous step.
        ``None`` (the default) *continues what the archive records*: each
        field inherits the spec of its latest timestep, so append sessions
        keep the cadence the stream was started with; fields with no recorded
        spec — and every field of ``temporal={}`` — are stored independently
        with ``codec``.

        ``field_rules`` optionally overrides ``codec`` / ``error_bound`` /
        ``chunk_shape`` / ``codec_params`` per field (the pipeline's per-field
        rules route through this).  ``flush`` controls whether the manifest is
        published after the step: default is to flush in append mode (each
        appended step becomes durable on its own) and not in write mode
        (publication happens on close anyway).
        """
        self._ensure_open()
        if hasattr(fields, "names") and hasattr(fields, "__getitem__"):
            items = [(field.name, field.data) for field in fields]
        elif isinstance(fields, Mapping):
            items = [(str(name), data) for name, data in fields.items()]
        else:
            raise ArchiveError(
                "add_timestep expects a FieldSet or a {name: array} mapping, "
                f"got {type(fields).__name__}"
            )
        if not items:
            raise ArchiveError("a timestep must contain at least one field")
        for name, _ in items:
            if "@" in name:
                raise ArchiveError(
                    f"timestep field name {name!r} must not contain '@' "
                    "(reserved for stored step names)"
                )
        last = self.manifest.timesteps[-1].step if self.manifest.timesteps else None
        if step is None:
            step = 0 if last is None else last + 1
        step = int(step)
        if last is not None and step <= last:
            raise ArchiveError(
                f"timestep ids must be strictly increasing: {step} follows {last}"
            )

        names = {name for name, _ in items}
        specs = self._resolve_temporal(temporal, names)
        field_rules = dict(field_rules or {})
        for rule_name in field_rules:
            if rule_name not in names:
                raise ArchiveError(
                    f"field_rules names unknown field {rule_name!r}; "
                    f"timestep fields: {sorted(names)}"
                )

        stored: Dict[str, str] = {}
        temporal_meta: Dict[str, Dict] = {}
        try:
            with _obs.span("store.write.timestep_seconds", step=step, fields=len(items)):
                self._add_timestep_fields(
                    items, step, specs, field_rules, codec, error_bound, chunk_shape,
                    codec_params, stored, temporal_meta,
                )
        except BaseException:
            # A timestep is all-or-nothing: without this, a mid-step failure
            # would leave orphan `{name}@{step}` entries in the manifest with
            # no timestep index entry, and every later add_timestep would
            # re-derive the same step id and die on the duplicate name — the
            # stream could never be appended again.  The already-written
            # payload bytes become dead space (harmless; recovery and reads
            # only follow manifest offsets).
            for stored_name in stored.values():
                self.manifest.fields.pop(stored_name, None)
            raise
        entry = TimestepEntry(
            step=step,
            time=None if time is None else float(time),
            fields=stored,
            temporal=temporal_meta,
        )
        self.manifest.add_timestep(entry)
        if self._history is not None:
            for name, stored_name in stored.items():
                _, count = self._history.get(name, (None, 0))
                self._history[name] = (stored_name, count + 1)
        self._dirty = True
        should_flush = flush if flush is not None else self.mode == "a"
        if should_flush:
            self.flush()
        return entry

    def _add_timestep_fields(
        self, items, step, specs, field_rules, codec, error_bound, chunk_shape,
        codec_params, stored, temporal_meta,
    ) -> None:
        """Compress and register every field of one timestep (see add_timestep)."""
        for name, data in items:
            rule = dict(field_rules.get(name, {}))
            field_codec = rule.get("codec", codec)
            field_bound = rule.get("error_bound", error_bound)
            field_chunk = rule.get("chunk_shape", chunk_shape)
            previous, occurrences = self._field_history(name)
            if field_chunk is None and self.default_chunk_shape is None and previous is not None:
                # an append session that did not restate the chunk grid keeps
                # the field's existing one — delta anchors require alignment,
                # and uniform grids keep region reads predictable across time
                field_chunk = self.manifest[previous].chunk_shape
            field_params = dict(codec_params, **dict(rule.get("codec_params", {})))
            stored_name = stored_field_name(name, step)
            spec = specs.get(name)
            if spec is not None and spec.mode == "delta":
                base_codec = spec.base or field_codec or self.default_codec
                if previous is None or occurrences % spec.anchor_every == 0:
                    # anchor step: independent encode with the base codec
                    self.add_field(
                        stored_name,
                        data,
                        codec=base_codec,
                        error_bound=field_bound,
                        chunk_shape=field_chunk,
                        **field_params,
                    )
                else:
                    self.add_field(
                        stored_name,
                        data,
                        codec="temporal-delta",
                        error_bound=field_bound,
                        chunk_shape=field_chunk,
                        anchors=(previous,),
                        base=base_codec,
                        base_params=field_params,
                    )
                temporal_meta[name] = spec.to_dict()
            else:
                self.add_field(
                    stored_name,
                    data,
                    codec=field_codec,
                    error_bound=field_bound,
                    chunk_shape=field_chunk,
                    **field_params,
                )
                if spec is not None:
                    temporal_meta[name] = spec.to_dict()
            stored[name] = stored_name

    def add_fieldset(
        self,
        fieldset,
        codec: Optional[str] = None,
        error_bound: Optional[ErrorBound] = None,
        chunk_shape: Optional[Sequence[int]] = None,
        cross_field: Optional[Dict[str, Sequence[str]]] = None,
        **codec_params,
    ) -> Dict[str, FieldEntry]:
        """Add every field of a :class:`~repro.data.fields.FieldSet`.

        ``cross_field`` maps target field names to anchor-name sequences; the
        targets are written *after* all other fields (anchors must exist
        first) with the cross-field codec, everything else uses ``codec``.
        Extra keyword arguments (an ``entropy`` mode from the
        :mod:`repro.encoding.entropy` registry, a ``backend`` name, ...) are
        forwarded to every field's codec constructor, exactly as
        :meth:`add_field` forwards its own.
        """
        cross_field = dict(cross_field or {})
        for target, target_anchors in cross_field.items():
            if target not in fieldset:
                raise ArchiveError(f"cross-field target {target!r} is not in the fieldset")
            for anchor in target_anchors:
                if anchor not in fieldset:
                    raise ArchiveError(f"cross-field anchor {anchor!r} is not in the fieldset")
                if anchor in cross_field:
                    raise ArchiveError(
                        f"anchor {anchor!r} is itself a cross-field target; anchors must be "
                        "stored with a non-anchored codec"
                    )
        entries: Dict[str, FieldEntry] = {}
        for field in fieldset:
            if field.name in cross_field:
                continue
            entries[field.name] = self.add_field(
                field.name,
                field.data,
                codec=codec,
                error_bound=error_bound,
                chunk_shape=chunk_shape,
                **codec_params,
            )
        for target, target_anchors in cross_field.items():
            entries[target] = self.add_field(
                target,
                fieldset[target].data,
                codec="cross-field",
                error_bound=error_bound,
                chunk_shape=chunk_shape,
                anchors=tuple(target_anchors),
                **codec_params,
            )
        return entries
