"""Codec registry: one pluggable interface over every compressor in the repo.

The archive store compresses each chunk of each field with a *codec* — a named,
parameterised wrapper that turns an ndarray chunk into opaque bytes and back.
Wrapping the existing compressors (:class:`~repro.sz.pipeline.SZCompressor`,
:class:`~repro.zfp.codec.ZFPLikeCompressor`,
:class:`~repro.core.compressor.CrossFieldCompressor`, and the lossless byte
backends) behind one :class:`Codec` interface means new backends plug into the
store by calling :func:`register_codec` — the writer, reader and CLI never
change.

Codec parameters must be JSON-serialisable (they are stored in the archive
manifest so a reader can reconstruct the codec without out-of-band knowledge).
Error bounds travel as ``{"mode": ..., "value": ...}`` dictionaries; the
:class:`~repro.store.writer.ArchiveWriter` resolves relative bounds against the
*full* field before chunking, so every chunk honours the same absolute bound —
the same semantics as :class:`~repro.parallel.executor.BlockParallelCompressor`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Type, Union

import numpy as np

from repro.encoding.container import CompressedBlob
from repro.encoding.lossless import get_backend
from repro.sz.errors import ErrorBound
from repro.sz.quantizer import QUANT_RADIUS_DEFAULT

__all__ = [
    "Codec",
    "SZChunkCodec",
    "ZFPChunkCodec",
    "CrossFieldChunkCodec",
    "LosslessChunkCodec",
    "TemporalDeltaCodec",
    "register_codec",
    "get_codec",
    "codec_class",
    "available_codecs",
]


def _as_error_bound(value: Union[ErrorBound, Dict, float, None]) -> ErrorBound:
    """Accept an :class:`ErrorBound`, its dict form, or a bare float (relative)."""
    if value is None:
        return ErrorBound.relative(1e-3)
    if isinstance(value, ErrorBound):
        return value
    if isinstance(value, dict):
        return ErrorBound.from_dict(value)
    return ErrorBound.relative(float(value))


class Codec(ABC):
    """Interface every chunk codec must implement.

    Subclasses set :attr:`name` (the registry key), may flip
    :attr:`is_lossless` (exact byte round-trip, no error bound) and
    :attr:`requires_anchors` (decode needs aligned anchor-field chunks, as the
    cross-field compressor does), and must keep every constructor argument
    JSON-serialisable and reported by :meth:`params`.
    """

    #: Registry key.
    name: str = "abstract"
    #: True when decode reproduces the input bytes exactly.
    is_lossless: bool = False
    #: True when encode/decode need aligned anchor chunks.
    requires_anchors: bool = False
    #: True when :meth:`decode` accepts any bytes-like payload (memoryview
    #: included), letting the reader hand mmap-backed buffers in zero-copy.
    #: Codecs that require a real ``bytes`` object keep the default; the
    #: reader then materialises the payload before calling them.
    decode_accepts_buffer: bool = False
    #: True when :meth:`decode_preview` can reconstruct a coarse chunk from a
    #: payload prefix (progressive layouts).  Codecs without progressive
    #: payloads keep the default; their previews fall back to a full decode.
    supports_preview: bool = False

    def decode_preview(
        self,
        payload: bytes,
        fraction: float,
        anchors: Optional[Sequence[np.ndarray]] = None,
        scheduler=None,
    ):
        """Decode a coarse preview within a byte-budget ``fraction``.

        Returns ``(array, info)`` where ``info`` reports ``groups_decoded`` /
        ``groups_total`` / ``bytes_decoded`` / ``bytes_total`` /
        ``rms_error_estimate`` / ``fallback``.  The base implementation is the
        non-progressive fallback: a full decode billed at its full payload
        size, flagged with ``fallback: True`` so callers never mistake it for
        a cheap prefix read.
        """
        array = self.decode(payload, anchors=anchors, scheduler=scheduler)
        nbytes = len(payload)
        info = {
            "groups_decoded": 1,
            "groups_total": 1,
            "bytes_decoded": nbytes,
            "bytes_total": nbytes,
            "rms_error_estimate": 0.0,
            "fallback": True,
        }
        return array, info

    @abstractmethod
    def encode(self, chunk: np.ndarray, anchors: Optional[Sequence[np.ndarray]] = None) -> bytes:
        """Compress one chunk into opaque bytes."""

    @abstractmethod
    def decode(
        self,
        payload: bytes,
        anchors: Optional[Sequence[np.ndarray]] = None,
        scheduler=None,
    ) -> np.ndarray:
        """Inverse of :meth:`encode`.

        ``scheduler`` is an optional :class:`~repro.parallel.engine.ChunkScheduler`
        for codecs whose decode can parallelise *within* one chunk (the
        SZ-family entropy stage fans checkpointed Huffman sub-blocks out).
        Callers only pass one when no outer chunk-level parallelism is active
        (a single-chunk region read), so codecs may submit to it freely;
        codecs without intra-chunk parallelism ignore it.
        """

    @abstractmethod
    def params(self) -> Dict:
        """JSON-serialisable constructor parameters (stored in the manifest)."""


class SZChunkCodec(Codec):
    """Chunk codec backed by the SZ3-style baseline pipeline.

    Decoding runs through the vectorised predictor paths in
    :mod:`repro.sz.predictors` (batched per-shape index tables, see
    ``docs/architecture.md`` "The wavefront batch decoder"); the
    ``tests/test_sz_parity.py`` harness pins them bit-identical to the scalar
    reference implementations, and the ``sz-hybrid`` golden archive pins the
    decoded bytes across releases.
    """

    name = "sz"
    decode_accepts_buffer = True

    def __init__(
        self,
        error_bound: Union[ErrorBound, Dict, float, None] = None,
        predictor: str = "lorenzo",
        entropy: str = "huffman",
        backend: str = "zlib",
        quant_radius: int = QUANT_RADIUS_DEFAULT,
    ) -> None:
        from repro.sz.pipeline import SZCompressor

        self.error_bound = _as_error_bound(error_bound)
        self.predictor = predictor
        self.entropy = entropy
        self.backend = backend
        self.quant_radius = int(quant_radius)
        self._compressor = SZCompressor(
            error_bound=self.error_bound,
            predictor=predictor,
            entropy=entropy,
            backend=backend,
            quant_radius=self.quant_radius,
        )

    def encode(self, chunk: np.ndarray, anchors: Optional[Sequence[np.ndarray]] = None) -> bytes:
        return self._compressor.compress(chunk).payload

    def decode(
        self,
        payload: bytes,
        anchors: Optional[Sequence[np.ndarray]] = None,
        scheduler=None,
    ) -> np.ndarray:
        return self._compressor.decompress(payload, scheduler=scheduler)

    def params(self) -> Dict:
        return {
            "error_bound": self.error_bound.to_dict(),
            "predictor": self.predictor,
            "entropy": self.entropy,
            "backend": self.backend,
            "quant_radius": self.quant_radius,
        }


class ZFPChunkCodec(Codec):
    """Chunk codec backed by the transform-based ZFP-like compressor.

    The default ``layout="grouped"`` stores each chunk's coefficients in
    significance-ordered groups (:mod:`repro.zfp.layout`), which makes chunk
    payloads prefix-decodable: :meth:`decode_preview` reconstructs a coarse
    chunk from the first groups only.  ``layout="interleaved"`` writes the
    legacy flat stream; payloads of either layout decode regardless of the
    codec's own ``layout`` setting (the blob metadata wins).
    """

    name = "zfp"
    decode_accepts_buffer = True
    supports_preview = True

    def __init__(
        self,
        error_bound: Union[ErrorBound, Dict, float, None] = None,
        block_size: int = 4,
        entropy: str = "huffman",
        backend: str = "zlib",
        layout: str = "grouped",
    ) -> None:
        from repro.zfp.codec import ZFPLikeCompressor

        self.error_bound = _as_error_bound(error_bound)
        self.block_size = int(block_size)
        self.entropy = entropy
        self.backend = backend
        self.layout = layout
        self._compressor = ZFPLikeCompressor(
            error_bound=self.error_bound,
            block_size=self.block_size,
            entropy=entropy,
            backend=backend,
            layout=layout,
        )

    def encode(self, chunk: np.ndarray, anchors: Optional[Sequence[np.ndarray]] = None) -> bytes:
        return self._compressor.compress(chunk).payload

    def decode(
        self,
        payload: bytes,
        anchors: Optional[Sequence[np.ndarray]] = None,
        scheduler=None,
    ) -> np.ndarray:
        return self._compressor.decompress(payload, scheduler=scheduler)

    def decode_preview(
        self,
        payload: bytes,
        fraction: float,
        anchors: Optional[Sequence[np.ndarray]] = None,
        scheduler=None,
    ):
        return self._compressor.decompress_preview(payload, fraction, scheduler=scheduler)

    def params(self) -> Dict:
        return {
            "error_bound": self.error_bound.to_dict(),
            "block_size": self.block_size,
            "entropy": self.entropy,
            "backend": self.backend,
            "layout": self.layout,
        }


class CrossFieldChunkCodec(Codec):
    """Chunk codec backed by the paper's cross-field compressor.

    Encode and decode both receive the *reconstructed* chunks of the anchor
    fields (the store guarantees writer and reader see bit-identical anchors),
    so the CFNN predictions match on both sides.  Training hyper-parameters
    default to small values sized for per-chunk models; ``allow_fallback``
    keeps the output no larger than a plain Lorenzo stream when a chunk has
    weak cross-field signal.
    """

    name = "cross-field"
    requires_anchors = True
    decode_accepts_buffer = True

    def __init__(
        self,
        error_bound: Union[ErrorBound, Dict, float, None] = None,
        epochs: int = 4,
        n_patches: int = 32,
        entropy: str = "huffman",
        backend: str = "zlib",
        allow_fallback: bool = True,
        seed: int = 1234,
    ) -> None:
        from repro.core.compressor import CrossFieldCompressor
        from repro.core.training import TrainingConfig

        self.error_bound = _as_error_bound(error_bound)
        self.epochs = int(epochs)
        self.n_patches = int(n_patches)
        self.entropy = entropy
        self.backend = backend
        self.allow_fallback = bool(allow_fallback)
        self.seed = int(seed)
        self._compressor = CrossFieldCompressor(
            error_bound=self.error_bound,
            training=TrainingConfig(epochs=self.epochs, n_patches=self.n_patches, seed=self.seed),
            entropy=entropy,
            backend=backend,
            allow_fallback=self.allow_fallback,
        )

    def _check_anchors(self, anchors: Optional[Sequence[np.ndarray]]) -> List[np.ndarray]:
        if not anchors:
            raise ValueError("cross-field codec needs at least one anchor chunk")
        return [np.asarray(a, dtype=np.float64) for a in anchors]

    def encode(self, chunk: np.ndarray, anchors: Optional[Sequence[np.ndarray]] = None) -> bytes:
        return self._compressor.compress(chunk, self._check_anchors(anchors)).payload

    def decode(
        self,
        payload: bytes,
        anchors: Optional[Sequence[np.ndarray]] = None,
        scheduler=None,
    ) -> np.ndarray:
        return self._compressor.decompress(
            payload, self._check_anchors(anchors), scheduler=scheduler
        )

    def params(self) -> Dict:
        return {
            "error_bound": self.error_bound.to_dict(),
            "epochs": self.epochs,
            "n_patches": self.n_patches,
            "entropy": self.entropy,
            "backend": self.backend,
            "allow_fallback": self.allow_fallback,
            "seed": self.seed,
        }


class LosslessChunkCodec(Codec):
    """Exact chunk codec: raw array bytes through a lossless byte backend.

    The chunk bytes travel inside a :class:`CompressedBlob` whose metadata
    records shape and dtype, so decode needs no side information.
    """

    name = "lossless"
    is_lossless = True
    decode_accepts_buffer = True

    format_name = "lossless-chunk"

    def __init__(self, backend: str = "zlib") -> None:
        self.backend = backend
        self._backend = get_backend(backend)

    def encode(self, chunk: np.ndarray, anchors: Optional[Sequence[np.ndarray]] = None) -> bytes:
        chunk = np.ascontiguousarray(chunk)
        blob = CompressedBlob(
            metadata={
                "format": self.format_name,
                "shape": list(chunk.shape),
                "dtype": str(chunk.dtype),
                "backend": self._backend.name,
            }
        )
        blob.add_section("data", self._backend.compress(chunk.tobytes()))
        return blob.to_bytes()

    def decode(
        self,
        payload: bytes,
        anchors: Optional[Sequence[np.ndarray]] = None,
        scheduler=None,
    ) -> np.ndarray:
        blob = CompressedBlob.from_bytes(payload)
        metadata = blob.metadata
        if metadata.get("format") != self.format_name:
            raise ValueError(
                f"payload format {metadata.get('format')!r} is not {self.format_name!r}"
            )
        backend = get_backend(metadata["backend"])
        raw = backend.decompress(blob.get_section("data"))
        return np.frombuffer(raw, dtype=np.dtype(metadata["dtype"])).reshape(
            tuple(metadata["shape"])
        ).copy()

    def params(self) -> Dict:
        return {"backend": self.backend}


class TemporalDeltaCodec(Codec):
    """Residual coding against the previous timestep, through any base codec.

    The anchor chunk handed in by the store is the *decoded* chunk of the same
    field at the previous timestep (closed-loop prediction): encode compresses
    the residual ``chunk - previous`` with the ``base`` codec at the target
    error bound, decode adds the reconstructed residual back.  Because the
    base codec bounds ``|residual_hat - residual|``, the reconstruction
    satisfies ``|decoded - original| <= bound`` at *every* step — the bound
    does not drift along a delta chain.

    ``base`` must be a non-anchored codec (``sz`` / ``zfp`` / ``lossless`` /
    any registered equivalent); with a lossless base the round trip is exact.
    Chained deltas resolve recursively through the store's anchor machinery:
    reading step *t* decodes back to the nearest independent anchor step.
    """

    name = "temporal-delta"
    requires_anchors = True

    def __init__(
        self,
        error_bound: Union[ErrorBound, Dict, float, None] = None,
        base: str = "sz",
        base_params: Optional[Dict] = None,
    ) -> None:
        base_cls = codec_class(base)
        if base_cls.requires_anchors:
            raise ValueError(
                f"temporal-delta base codec must decode without anchors, got {base!r}"
            )
        self.base = base_cls.name
        self.base_params = dict(base_params or {})
        if base_cls.is_lossless:
            self.error_bound = None
            self._base = get_codec(base, **self.base_params)
        else:
            self.error_bound = _as_error_bound(error_bound)
            self._base = get_codec(base, error_bound=self.error_bound, **self.base_params)
        # residual payloads go straight to the base codec, so buffer support
        # is exactly whatever the base declares
        self.decode_accepts_buffer = getattr(self._base, "decode_accepts_buffer", False)

    def _previous(self, anchors: Optional[Sequence[np.ndarray]]) -> np.ndarray:
        if not anchors or len(anchors) != 1:
            raise ValueError(
                "temporal-delta codec needs exactly one anchor chunk "
                "(the decoded previous timestep)"
            )
        return np.asarray(anchors[0], dtype=np.float64)

    def encode(self, chunk: np.ndarray, anchors: Optional[Sequence[np.ndarray]] = None) -> bytes:
        residual = np.asarray(chunk, dtype=np.float64) - self._previous(anchors)
        return self._base.encode(np.ascontiguousarray(residual))

    def decode(
        self,
        payload: bytes,
        anchors: Optional[Sequence[np.ndarray]] = None,
        scheduler=None,
    ) -> np.ndarray:
        residual = self._base.decode(payload, scheduler=scheduler)
        return self._previous(anchors) + np.asarray(residual, dtype=np.float64)

    def params(self) -> Dict:
        payload: Dict = {"base": self.base, "base_params": self.base_params}
        if self.error_bound is not None:
            payload["error_bound"] = self.error_bound.to_dict()
        return payload


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, Type[Codec]] = {}


def register_codec(cls: Type[Codec]) -> Type[Codec]:
    """Register a codec class under ``cls.name`` (usable as a decorator).

    Names are case-insensitive: the registry key is lowercased to match the
    lowercased lookups in :func:`get_codec` / :func:`codec_class`.
    """
    if not (isinstance(cls, type) and issubclass(cls, Codec)):
        raise TypeError("codec must subclass Codec")
    if not cls.name or cls.name == Codec.name:
        raise ValueError("codec class must define a unique `name`")
    _REGISTRY[cls.name.lower()] = cls
    return cls


def get_codec(name: Union[str, Codec], **params) -> Codec:
    """Instantiate a codec by registry name (instances pass through)."""
    if isinstance(name, Codec):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown codec {name!r}; available: {available_codecs()}")
    return _REGISTRY[key](**params)


def codec_class(name: str) -> Type[Codec]:
    """Return the registered codec class for ``name`` without instantiating it."""
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown codec {name!r}; available: {available_codecs()}")
    return _REGISTRY[key]


def available_codecs() -> List[str]:
    """Names of all registered codecs."""
    return sorted(_REGISTRY)


for _cls in (
    SZChunkCodec,
    ZFPChunkCodec,
    CrossFieldChunkCodec,
    LosslessChunkCodec,
    TemporalDeltaCodec,
):
    register_codec(_cls)
