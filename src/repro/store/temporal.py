"""Temporal-coding policy for time-stepped archives.

A :class:`TemporalSpec` describes *how a field travels through time* in an
appendable archive: whether each new timestep is stored independently or as an
error-bounded residual against the decoded previous step (``temporal-delta``
codec), and how often an independent *anchor step* interrupts the delta chain.

Anchors every ``anchor_every`` steps bound the work of a random access in
time: reading step ``t`` decodes at most ``anchor_every`` chunks per spatial
chunk (the delta chain back to the nearest anchor), never the whole history.
Because each delta is predicted from the *decoded* previous step (closed-loop
prediction), the per-point error bound holds at every step without drift —
anchors exist for access locality, not error control.

The spec is deliberately tiny and JSON-round-trippable: it is what
:class:`~repro.pipeline.config.FieldRule` stores under ``temporal``, what
:meth:`~repro.store.writer.ArchiveWriter.add_timestep` consumes, and what the
manifest's timestep index records per field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Union

__all__ = ["TemporalSpec", "TEMPORAL_MODES", "DEFAULT_ANCHOR_EVERY"]

TEMPORAL_MODES = ("delta", "independent")

#: Default anchor cadence: one independent step per eight appended steps.
DEFAULT_ANCHOR_EVERY = 8

_SPEC_KEYS = ("mode", "anchor_every", "base")


@dataclass(frozen=True)
class TemporalSpec:
    """How one field is coded along the time axis.

    Parameters
    ----------
    mode:
        ``"delta"`` — encode step *t* as a residual against the decoded step
        *t-1* (with periodic anchors); ``"independent"`` — every step stands
        alone (equivalent to not having a spec at all, kept so configs can
        state the choice explicitly).
    anchor_every:
        Anchor cadence ``K``: occurrences ``0, K, 2K, ...`` of the field are
        stored independently, everything in between as deltas.  ``1`` makes
        every step an anchor (independent coding with timestep bookkeeping).
    base:
        Codec registry name used for anchors and for the residual payloads
        (``None``: the writer's default codec for the call).
    """

    mode: str = "delta"
    anchor_every: int = DEFAULT_ANCHOR_EVERY
    base: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in TEMPORAL_MODES:
            raise ValueError(
                f"temporal mode must be one of {TEMPORAL_MODES}, got {self.mode!r}"
            )
        if isinstance(self.anchor_every, bool) or not isinstance(self.anchor_every, int):
            raise ValueError(
                f"temporal anchor_every must be an integer >= 1, got {self.anchor_every!r}"
            )
        if self.anchor_every < 1:
            raise ValueError(
                f"temporal anchor_every must be >= 1, got {self.anchor_every}"
            )
        if self.base is not None and not isinstance(self.base, str):
            raise ValueError(f"temporal base must be a codec name, got {self.base!r}")

    def to_dict(self) -> Dict:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        payload: Dict = {"mode": self.mode, "anchor_every": int(self.anchor_every)}
        if self.base is not None:
            payload["base"] = self.base
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping, context: str = "temporal spec") -> "TemporalSpec":
        """Parse the dict form, rejecting unknown keys."""
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"{context}: expected an object, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - set(_SPEC_KEYS))
        if unknown:
            raise ValueError(
                f"{context}: unknown key(s) {unknown}; allowed: {sorted(_SPEC_KEYS)}"
            )
        try:
            return cls(
                mode=payload.get("mode", "delta"),
                anchor_every=payload.get("anchor_every", DEFAULT_ANCHOR_EVERY),
                base=payload.get("base"),
            )
        except ValueError as exc:
            raise ValueError(f"{context}: {exc}") from exc

    @classmethod
    def coerce(
        cls, value: Union["TemporalSpec", str, Mapping, None], context: str = "temporal spec"
    ) -> Optional["TemporalSpec"]:
        """Accept a spec, its dict form, a bare mode string, or ``None``."""
        if value is None or isinstance(value, TemporalSpec):
            return value
        if isinstance(value, str):
            try:
                return cls(mode=value)
            except ValueError as exc:
                raise ValueError(f"{context}: {exc}") from exc
        return cls.from_dict(value, context=context)

    @staticmethod
    def looks_like_spec(value: Mapping) -> bool:
        """Whether a mapping is one spec (vs a per-field ``{name: spec}`` map)."""
        return bool(value) and set(value) <= set(_SPEC_KEYS)
