"""On-disk layout and manifest of the ``XFA1`` chunked archive format.

An archive is a single file holding many named fields, each split into
independently compressed chunks::

    +--------------------+  offset 0
    | header (16 bytes)  |  magic "XFA1", format version, reserved
    +--------------------+
    | chunk payloads     |  codec output, appended in write order
    | ...                |
    +--------------------+  manifest_offset
    | manifest (JSON)    |  fields, chunk grids, offsets, CRCs, codecs
    +--------------------+
    | footer (24 bytes)  |  manifest offset/length/CRC32, magic "XFA1"
    +--------------------+

Random access works footer-first: a reader seeks to the end, locates and
CRC-verifies the JSON manifest, and from then on every chunk of every field is
one ``seek`` + ``read`` away.  Chunk payloads are opaque to this module — the
codec named in the field entry (see :mod:`repro.store.codecs`) produced them.

Appendable archives re-publish the manifest at the end of the file on every
flush (see :meth:`repro.store.writer.ArchiveWriter.flush`); earlier manifests
stay in place as dead bytes, forming a *manifest log* that
:func:`recover_manifest` can scan backwards when the newest footer was lost to
a crash or truncation.

This module owns the byte-level header/footer framing, the manifest
dataclasses (including the versioned timestep index), the shared
footer-first manifest loading, and the chunk-grid arithmetic used to map a
region of interest to the set of intersecting chunks.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "MANIFEST_VERSION",
    "ArchiveError",
    "ArchiveCorruptionError",
    "ChunkEntry",
    "FieldEntry",
    "TimestepEntry",
    "ArchiveManifest",
    "read_manifest",
    "recover_manifest",
    "chunk_grid_counts",
    "chunks_intersecting_region",
    "normalize_region",
]

MAGIC = b"XFA1"  # cross-field archive, format version 1
FORMAT_VERSION = 1

#: Manifest schema version.  v1: fields only.  v2: adds the ``timesteps``
#: index for appendable time-stepped archives; v1 manifests auto-upgrade to
#: the in-memory v2 form (empty index) on read.
MANIFEST_VERSION = 2

_HEADER_FMT = "<4sB11x"  # magic, version, 11 reserved bytes
_FOOTER_FMT = "<QQI4s"  # manifest offset, manifest length, manifest crc32, magic
HEADER_SIZE = struct.calcsize(_HEADER_FMT)
FOOTER_SIZE = struct.calcsize(_FOOTER_FMT)


class ArchiveError(ValueError):
    """Base error for malformed archives and invalid store requests."""


class ArchiveCorruptionError(ArchiveError):
    """Raised when a CRC check fails or framing bytes are inconsistent."""


# --------------------------------------------------------------------------- #
# header / footer framing
# --------------------------------------------------------------------------- #
def pack_header() -> bytes:
    """Serialize the fixed-size archive header."""
    return struct.pack(_HEADER_FMT, MAGIC, FORMAT_VERSION)


def unpack_header(payload: bytes) -> int:
    """Validate the header bytes and return the format version."""
    if len(payload) < HEADER_SIZE:
        raise ArchiveCorruptionError("file too small to hold an XFA1 header")
    magic, version = struct.unpack_from(_HEADER_FMT, payload, 0)
    if magic != MAGIC:
        raise ArchiveCorruptionError(f"bad magic {magic!r}; not an XFA1 archive")
    if version != FORMAT_VERSION:
        raise ArchiveError(f"unsupported archive format version {version}")
    return int(version)


def pack_footer(manifest_offset: int, manifest_length: int, manifest_crc: int) -> bytes:
    """Serialize the fixed-size archive footer."""
    return struct.pack(_FOOTER_FMT, manifest_offset, manifest_length, manifest_crc, MAGIC)


def unpack_footer(payload: bytes) -> Tuple[int, int, int]:
    """Parse footer bytes into ``(manifest_offset, manifest_length, manifest_crc)``."""
    if len(payload) < FOOTER_SIZE:
        raise ArchiveCorruptionError("file too small to hold an XFA1 footer")
    offset, length, crc, magic = struct.unpack_from(_FOOTER_FMT, payload, len(payload) - FOOTER_SIZE)
    if magic != MAGIC:
        raise ArchiveCorruptionError(
            "bad footer magic: archive is truncated or was not closed cleanly"
        )
    return int(offset), int(length), int(crc)


# --------------------------------------------------------------------------- #
# manifest dataclasses
# --------------------------------------------------------------------------- #
@dataclass
class ChunkEntry:
    """One compressed chunk: its grid position and where its bytes live."""

    index: int
    start: Tuple[int, ...]
    stop: Tuple[int, ...]
    offset: int
    length: int
    crc32: int

    @property
    def slices(self) -> Tuple[slice, ...]:
        """Slices selecting this chunk out of the full field."""
        return tuple(slice(a, b) for a, b in zip(self.start, self.stop))

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the decompressed chunk."""
        return tuple(b - a for a, b in zip(self.start, self.stop))

    def to_dict(self) -> Dict:
        """JSON-serialisable representation."""
        return {
            "index": int(self.index),
            "start": [int(v) for v in self.start],
            "stop": [int(v) for v in self.stop],
            "offset": int(self.offset),
            "length": int(self.length),
            "crc32": int(self.crc32),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ChunkEntry":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=int(payload["index"]),
            start=tuple(int(v) for v in payload["start"]),
            stop=tuple(int(v) for v in payload["stop"]),
            offset=int(payload["offset"]),
            length=int(payload["length"]),
            crc32=int(payload["crc32"]),
        )


@dataclass
class FieldEntry:
    """Everything a reader needs to reconstruct (part of) one stored field."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    chunk_shape: Tuple[int, ...]
    codec: str
    codec_params: Dict = field(default_factory=dict)
    anchors: Tuple[str, ...] = ()
    abs_error_bound: Optional[float] = None
    error_bound: Optional[Dict] = None
    original_nbytes: int = 0
    chunks: List[ChunkEntry] = field(default_factory=list)

    @property
    def compressed_nbytes(self) -> int:
        """Total payload bytes across all chunks (manifest overhead excluded)."""
        return sum(c.length for c in self.chunks)

    @property
    def ratio(self) -> float:
        """Compression ratio of this field."""
        compressed = self.compressed_nbytes
        if compressed == 0:
            return float("inf")
        return self.original_nbytes / compressed

    @property
    def grid_counts(self) -> Tuple[int, ...]:
        """Number of chunks along every axis."""
        return chunk_grid_counts(self.shape, self.chunk_shape)

    def to_dict(self) -> Dict:
        """JSON-serialisable representation."""
        payload = {
            "name": self.name,
            "dtype": self.dtype,
            "shape": [int(s) for s in self.shape],
            "chunk_shape": [int(s) for s in self.chunk_shape],
            "codec": self.codec,
            "codec_params": self.codec_params,
            "anchors": list(self.anchors),
            "abs_error_bound": self.abs_error_bound,
            "error_bound": self.error_bound,
            "original_nbytes": int(self.original_nbytes),
            "chunks": [c.to_dict() for c in self.chunks],
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "FieldEntry":
        """Inverse of :meth:`to_dict`."""
        try:
            np.dtype(payload["dtype"])
        except TypeError as exc:
            raise ArchiveCorruptionError(
                f"field {payload.get('name')!r}: manifest dtype {payload['dtype']!r} "
                "is not a valid dtype"
            ) from exc
        shape = tuple(int(s) for s in payload["shape"])
        chunk_shape = tuple(int(s) for s in payload["chunk_shape"])
        if any(s <= 0 for s in shape) or any(c <= 0 for c in chunk_shape):
            raise ArchiveCorruptionError(
                f"field {payload.get('name')!r}: manifest shape {shape} / "
                f"chunk_shape {chunk_shape} entries must be positive"
            )
        if len(chunk_shape) != len(shape):
            raise ArchiveCorruptionError(
                f"field {payload.get('name')!r}: chunk_shape rank {len(chunk_shape)} "
                f"does not match shape rank {len(shape)}"
            )
        chunks = [ChunkEntry.from_dict(c) for c in payload.get("chunks", [])]
        # the read path trusts each chunk's start/stop when assembling region
        # output, so a geometrically inconsistent (but CRC-valid) manifest
        # must be rejected here rather than silently yield garbage reads
        counts = chunk_grid_counts(shape, chunk_shape)
        total = int(np.prod(counts))
        if len(chunks) > total:
            raise ArchiveCorruptionError(
                f"field {payload.get('name')!r}: manifest lists {len(chunks)} chunks "
                f"but the chunk grid {counts} holds only {total}"
            )
        for position, chunk in enumerate(chunks):
            coord = np.unravel_index(position, counts)
            start = tuple(int(c) * b for c, b in zip(coord, chunk_shape))
            stop = tuple(min(a + b, s) for a, b, s in zip(start, chunk_shape, shape))
            if chunk.index != position or chunk.start != start or chunk.stop != stop:
                raise ArchiveCorruptionError(
                    f"field {payload.get('name')!r}: chunk at position {position} has "
                    f"extents {chunk.start}..{chunk.stop} (index {chunk.index}), but the "
                    f"chunk grid implies {start}..{stop} (index {position})"
                )
        return cls(
            name=payload["name"],
            dtype=payload["dtype"],
            shape=shape,
            chunk_shape=chunk_shape,
            codec=payload["codec"],
            codec_params=dict(payload.get("codec_params", {})),
            anchors=tuple(payload.get("anchors", ())),
            abs_error_bound=payload.get("abs_error_bound"),
            error_bound=payload.get("error_bound"),
            original_nbytes=int(payload.get("original_nbytes", 0)),
            chunks=chunks,
        )


@dataclass
class TimestepEntry:
    """One entry of the manifest's timestep index.

    ``fields`` maps each *base* field name of the step to the name the data is
    stored under in the flat field table (the writer uses ``{base}@{step}``).
    ``temporal`` records, per base name, the :class:`~repro.store.temporal.TemporalSpec`
    dict the step was written with (absent for independently coded fields), so
    a later append session can continue the same anchor cadence.
    """

    step: int
    time: Optional[float] = None
    fields: Dict[str, str] = field(default_factory=dict)
    temporal: Dict[str, Dict] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-serialisable representation."""
        payload: Dict = {
            "step": int(self.step),
            "time": None if self.time is None else float(self.time),
            "fields": dict(self.fields),
        }
        if self.temporal:
            payload["temporal"] = {name: dict(spec) for name, spec in self.temporal.items()}
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "TimestepEntry":
        """Inverse of :meth:`to_dict`."""
        fields = payload.get("fields")
        if not isinstance(fields, dict) or not fields:
            raise ArchiveCorruptionError(
                f"timestep {payload.get('step')!r}: manifest entry must map at "
                "least one field name to a stored field"
            )
        time = payload.get("time")
        return cls(
            step=int(payload["step"]),
            time=None if time is None else float(time),
            fields={str(k): str(v) for k, v in fields.items()},
            temporal={str(k): dict(v) for k, v in payload.get("temporal", {}).items()},
        )


@dataclass
class ArchiveManifest:
    """Ordered collection of :class:`FieldEntry` plus archive-level metadata.

    ``timesteps`` is the manifest-v2 time axis: an ordered (strictly
    increasing ``step``) list of :class:`TimestepEntry` whose stored names all
    resolve in ``fields``.  Archives without a time axis keep it empty.
    """

    fields: Dict[str, FieldEntry] = field(default_factory=dict)
    attrs: Dict = field(default_factory=dict)
    version: int = MANIFEST_VERSION
    timesteps: List[TimestepEntry] = field(default_factory=list)

    def add(self, entry: FieldEntry) -> None:
        """Register a field entry, rejecting duplicates."""
        if entry.name in self.fields:
            raise ArchiveError(f"duplicate field name {entry.name!r}")
        self.fields[entry.name] = entry

    def add_timestep(self, entry: TimestepEntry) -> None:
        """Append a timestep index entry (monotonic step ids, known fields)."""
        if self.timesteps and entry.step <= self.timesteps[-1].step:
            raise ArchiveError(
                f"timestep ids must be strictly increasing: {entry.step} follows "
                f"{self.timesteps[-1].step}"
            )
        for base, stored in entry.fields.items():
            if stored not in self.fields:
                raise ArchiveError(
                    f"timestep {entry.step}: stored field {stored!r} (for {base!r}) "
                    "is not in the archive"
                )
        self.timesteps.append(entry)

    def timestep(self, step: int) -> TimestepEntry:
        """The timestep index entry for ``step``."""
        for entry in self.timesteps:
            if entry.step == int(step):
                return entry
        raise ArchiveError(
            f"no timestep {step!r} in archive; available: {self.steps}"
        )

    @property
    def steps(self) -> List[int]:
        """Recorded timestep ids, in append order."""
        return [entry.step for entry in self.timesteps]

    def __contains__(self, name: str) -> bool:
        return name in self.fields

    def __getitem__(self, name: str) -> FieldEntry:
        if name not in self.fields:
            raise KeyError(f"no field named {name!r}; available: {sorted(self.fields)}")
        return self.fields[name]

    @property
    def names(self) -> List[str]:
        """Field names in write order."""
        return list(self.fields.keys())

    def to_json(self) -> bytes:
        """Serialize to the canonical UTF-8 JSON form stored in the archive."""
        payload = {
            "format": MAGIC.decode("ascii"),
            "version": self.version,
            "attrs": self.attrs,
            "fields": [entry.to_dict() for entry in self.fields.values()],
            "timesteps": [entry.to_dict() for entry in self.timesteps],
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def from_json(cls, payload: bytes) -> "ArchiveManifest":
        """Parse the JSON produced by :meth:`to_json`.

        Manifest version 1 (written before the timestep index existed) is
        auto-upgraded to the in-memory v2 form with an empty time axis;
        versions newer than :data:`MANIFEST_VERSION` are rejected.
        """
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ArchiveCorruptionError(f"manifest is not valid JSON: {exc}") from exc
        if decoded.get("format") != MAGIC.decode("ascii"):
            raise ArchiveCorruptionError("manifest format tag mismatch")
        version = int(decoded.get("version", 1))
        if version > MANIFEST_VERSION:
            raise ArchiveError(
                f"manifest version {version} is newer than this reader "
                f"(supports <= {MANIFEST_VERSION})"
            )
        manifest = cls(version=MANIFEST_VERSION, attrs=dict(decoded.get("attrs", {})))
        for entry in decoded.get("fields", []):
            manifest.add(FieldEntry.from_dict(entry))
        if version >= 2:
            try:
                for entry in decoded.get("timesteps", []):
                    manifest.add_timestep(TimestepEntry.from_dict(entry))
            except (KeyError, TypeError, ValueError) as exc:
                # add_timestep raises ArchiveError (a ValueError) with context;
                # bare struct problems get wrapped so readers see one hierarchy
                if isinstance(exc, ArchiveError):
                    raise
                raise ArchiveCorruptionError(f"malformed timestep index: {exc}") from exc
        return manifest

    def checked_json(self) -> Tuple[bytes, int]:
        """Return ``(json_bytes, crc32)`` ready for the footer."""
        payload = self.to_json()
        return payload, zlib.crc32(payload) & 0xFFFFFFFF


# --------------------------------------------------------------------------- #
# footer-first manifest loading and crash recovery
# --------------------------------------------------------------------------- #
def _source_size(src) -> int:
    """Byte count of a manifest source: a ByteStore or a seekable file handle."""
    if hasattr(src, "pread"):
        return src.size()
    src.seek(0, os.SEEK_END)
    return src.tell()


def _source_read(src, offset: int, length: int) -> bytes:
    """Positioned read from a ByteStore or a seekable file handle."""
    if hasattr(src, "pread"):
        return src.pread(offset, length)
    src.seek(offset)
    return src.read(length)


def read_manifest(fh) -> Tuple["ArchiveManifest", int, int]:
    """Load the newest manifest of an archive, footer-first.

    ``fh`` may be a seekable binary file handle or any
    :class:`~repro.store.bytestore.ByteStore`.  Returns
    ``(manifest, manifest_offset, published_end)`` where
    ``published_end`` is the file offset one past the footer (== file size for
    a cleanly closed archive).  Raises :class:`ArchiveCorruptionError` when
    the framing or CRCs are inconsistent — e.g. an append session crashed
    after writing payload bytes but before its flush completed, leaving the
    last *published* footer buried mid-file (see :func:`recover_manifest`).
    """
    file_size = _source_size(fh)
    if file_size < HEADER_SIZE + FOOTER_SIZE:
        raise ArchiveCorruptionError("file too small to be an XFA1 archive")
    unpack_header(_source_read(fh, 0, HEADER_SIZE))
    offset, length, crc = unpack_footer(_source_read(fh, file_size - FOOTER_SIZE, FOOTER_SIZE))
    if offset + length > file_size - FOOTER_SIZE:
        raise ArchiveCorruptionError("footer points past the end of the file")
    manifest_bytes = _source_read(fh, offset, length)
    if (zlib.crc32(manifest_bytes) & 0xFFFFFFFF) != crc:
        raise ArchiveCorruptionError("manifest CRC mismatch: archive is corrupted")
    return ArchiveManifest.from_json(manifest_bytes), offset, file_size


_RECOVERY_WINDOW = 1 << 20  # scan the tail in 1 MiB blocks


def recover_manifest(fh) -> Tuple["ArchiveManifest", int]:
    """Find the newest *valid* manifest by scanning the file backwards.

    ``fh`` may be a seekable binary file handle or any
    :class:`~repro.store.bytestore.ByteStore`.  Every flush of an append
    session leaves a ``manifest + footer`` pair in
    the file; only the newest one is reachable footer-first.  When the tail
    was lost (crash mid-append, truncated copy), this scans backwards for
    footer magic candidates, validates each (footer immediately follows its
    manifest, CRC matches, JSON parses) and returns the first survivor as
    ``(manifest, published_end)`` — everything the archive had fully flushed
    at that point.  ``published_end`` is the offset one past the recovered
    footer; callers resuming an append truncate to it.

    Raises :class:`ArchiveCorruptionError` when no valid manifest exists
    anywhere in the file (including a bad header).
    """
    file_size = _source_size(fh)
    if file_size < HEADER_SIZE + FOOTER_SIZE:
        raise ArchiveCorruptionError("file too small to be an XFA1 archive")
    unpack_header(_source_read(fh, 0, HEADER_SIZE))

    def try_candidate(footer_end: int) -> Optional[Tuple["ArchiveManifest", int]]:
        footer_start = footer_end - FOOTER_SIZE
        if footer_start < HEADER_SIZE:
            return None
        try:
            offset, length, crc = unpack_footer(_source_read(fh, footer_start, FOOTER_SIZE))
        except ArchiveError:
            return None
        # the writer always places a footer immediately after its manifest;
        # enforcing that here rejects payload bytes that merely contain magic
        if offset < HEADER_SIZE or offset + length != footer_start:
            return None
        manifest_bytes = _source_read(fh, offset, length)
        if (zlib.crc32(manifest_bytes) & 0xFFFFFFFF) != crc:
            return None
        try:
            manifest = ArchiveManifest.from_json(manifest_bytes)
        except ArchiveError:
            return None
        return manifest, footer_end

    magic_len = len(MAGIC)
    high = file_size
    while high > HEADER_SIZE:
        low = max(HEADER_SIZE, high - _RECOVERY_WINDOW)
        # overlap the next block by magic_len-1 bytes so a magic string
        # straddling the block boundary is still found
        window = _source_read(fh, low, min(high + magic_len - 1, file_size) - low)
        search_end = len(window)
        while True:
            found = window.rfind(MAGIC, 0, search_end)
            if found < 0:
                break
            search_end = found + magic_len - 1
            recovered = try_candidate(low + found + magic_len)
            if recovered is not None:
                return recovered
        high = low
    raise ArchiveCorruptionError(
        "no valid manifest found anywhere in the file: archive is corrupted "
        "beyond recovery"
    )


# --------------------------------------------------------------------------- #
# chunk-grid arithmetic
# --------------------------------------------------------------------------- #
def chunk_grid_counts(shape: Sequence[int], chunk_shape: Sequence[int]) -> Tuple[int, ...]:
    """Number of chunks along every axis when tiling ``shape`` with ``chunk_shape``."""
    return tuple(int(np.ceil(s / c)) for s, c in zip(shape, chunk_shape))


def normalize_region(shape: Sequence[int], region) -> Tuple[slice, ...]:
    """Normalise a region-of-interest into full-rank, bounded, positive slices.

    ``region`` may be a single slice/int, a tuple mixing slices and ints
    (``data[3, 10:20]`` style), or ``None``/``Ellipsis`` for the whole field.
    Integers select the single-element slice (the axis is kept, matching the
    behaviour needed to reassemble chunk overlaps); steps other than 1 are
    rejected because chunked reads materialise contiguous spans.
    """
    shape = tuple(int(s) for s in shape)
    if region is None or region is Ellipsis:
        return tuple(slice(0, s) for s in shape)
    if not isinstance(region, tuple):
        region = (region,)
    if len(region) > len(shape):
        raise ArchiveError(f"region rank {len(region)} exceeds field rank {len(shape)}")
    out: List[slice] = []
    for axis, size in enumerate(shape):
        if axis >= len(region):
            out.append(slice(0, size))
            continue
        item = region[axis]
        if isinstance(item, (int, np.integer)):
            idx = int(item)
            if idx < 0:
                idx += size
            if not 0 <= idx < size:
                raise ArchiveError(f"index {item} out of bounds for axis {axis} with size {size}")
            out.append(slice(idx, idx + 1))
            continue
        if not isinstance(item, slice):
            raise ArchiveError(f"region entries must be slices or ints, got {type(item).__name__}")
        if item.step not in (None, 1):
            raise ArchiveError("region slices must have step 1")
        try:
            start, stop, _ = item.indices(size)
        except TypeError:
            # slice.indices leaks a bare TypeError for non-integer bounds
            # (slice(0.5, 3.5)); keep the error typed for callers that map
            # region problems to HTTP statuses
            raise ArchiveError(
                f"region slice bounds must be integers, got {item!r} on axis {axis}"
            ) from None
        if stop <= start:
            raise ArchiveError(f"empty region on axis {axis}: {item}")
        out.append(slice(start, stop))
    return tuple(out)


def chunks_intersecting_region(
    shape: Sequence[int], chunk_shape: Sequence[int], region: Tuple[slice, ...]
) -> List[int]:
    """Flat indices of the chunks that intersect ``region``.

    The grid is regular, so the intersecting chunk range along every axis is a
    closed interval computed by integer division — no scan over the chunk list
    is needed; the cost is proportional to the number of *intersecting*
    chunks, not the total number of chunks.
    """
    counts = chunk_grid_counts(shape, chunk_shape)
    axis_ranges = []
    for sl, chunk, count in zip(region, chunk_shape, counts):
        first = sl.start // chunk
        last = (sl.stop - 1) // chunk
        axis_ranges.append(range(first, min(last, count - 1) + 1))
    indices = []
    for coords in np.ndindex(*[len(r) for r in axis_ranges]):
        grid_coord = tuple(axis_ranges[d][coords[d]] for d in range(len(axis_ranges)))
        indices.append(int(np.ravel_multi_index(grid_coord, counts)))
    return indices
