"""Process-wide chunk cache with single-flight decode deduplication.

Every :class:`~repro.store.reader.ArchiveReader` historically owned a private
LRU, so N concurrent readers of one archive decoded the same hot chunk N
times.  :class:`SharedChunkCache` is the fix: one thread-safe cache many
readers (and, later, many service-layer requests) share, keyed per archive
*generation* so entries can never leak across archives or across append
publications:

``key = (st_dev, st_ino, generation, field_name, chunk_index)``

where ``generation`` is the archive's published end offset — the byte just
past the footer the reader's manifest came from.  Appends only ever publish
*new* footers at larger offsets, so a new generation means new keys; entries
cached for generation G stay byte-correct for every reader still holding G
and simply age out of the LRU once those readers are gone.  No cross-thread
invalidation race exists because stale entries are never *wrong*, only old.
:meth:`invalidate` exists for callers that want eager eviction anyway.

**Single-flight:** concurrent misses on one key do not decode redundantly.
The first caller (the *leader*) runs the decode; every other caller blocks on
the leader's in-flight entry and receives the same array.  If the decode
raises, the exception propagates to the leader *and* every waiter, and the
in-flight entry is removed so a later call retries cleanly.

Telemetry (``store.cache.shared.*``): ``hits`` / ``misses`` count resolved
lookups, ``coalesced`` counts callers that piggybacked on another thread's
in-flight decode, and ``wait_seconds`` times how long they blocked.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from repro import obs as _obs
from repro.store.cache import LRUChunkCache, freeze_chunk

__all__ = ["SharedChunkCache", "process_chunk_cache", "DEFAULT_SHARED_CACHE_BYTES"]

#: Default budget for the process-wide cache: 256 MiB of decoded chunks.
DEFAULT_SHARED_CACHE_BYTES = 256 * 1024 * 1024


class _InFlight:
    """One in-progress decode: waiters block on ``event``, then read the result."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None

    def wait(self) -> np.ndarray:
        self.event.wait()
        if self.error is not None:
            raise self.error
        return self.value


class SharedChunkCache:
    """Thread-safe LRU of decoded chunks with single-flight miss coalescing.

    All stored arrays are read-only (see
    :func:`~repro.store.cache.freeze_chunk`); callers needing a writable
    chunk copy it, exactly as with the per-reader cache.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_SHARED_CACHE_BYTES,
        max_entries: Optional[int] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._lru = LRUChunkCache(max_bytes=max_bytes, max_entries=max_entries)
        self._inflight: Dict[Hashable, _InFlight] = {}
        self.coalesced = 0

    # ------------------------------------------------------------------ #
    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """A cached chunk (read-only) or ``None``; counts a hit or miss."""
        with self._lock:
            chunk = self._lru.get(key)
        recorder = _obs.get_recorder()
        if recorder.enabled:
            recorder.count("store.cache.shared.hit" if chunk is not None else "store.cache.shared.miss")
        return chunk

    def put(self, key: Hashable, chunk: np.ndarray) -> None:
        """Insert a chunk (frozen read-only) outside any single-flight path."""
        chunk = freeze_chunk(chunk)
        with self._lock:
            self._lru.put(key, chunk)

    def get_or_compute(
        self, key: Hashable, factory: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """The cached chunk for ``key``, decoding via ``factory`` at most once.

        Concurrent callers with the same key block on one in-flight decode
        instead of each running ``factory``.  A factory exception propagates
        to every blocked caller and removes the in-flight entry, so the next
        call after a failure retries.
        """
        recorder = _obs.get_recorder()
        with self._lock:
            chunk = self._lru.get(key)
            if chunk is not None:
                if recorder.enabled:
                    recorder.count("store.cache.shared.hit")
                return chunk
            flight = self._inflight.get(key)
            if flight is None:
                flight = self._inflight[key] = _InFlight()
                leader = True
            else:
                leader = False

        if not leader:
            self.coalesced += 1
            if recorder.enabled:
                recorder.count("store.cache.shared.coalesced")
                started = time.perf_counter()
                try:
                    return flight.wait()
                finally:
                    recorder.observe(
                        "store.cache.shared.wait_seconds", time.perf_counter() - started
                    )
            return flight.wait()

        if recorder.enabled:
            recorder.count("store.cache.shared.miss")
        try:
            value = freeze_chunk(factory())
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        with self._lock:
            self._lru.put(key, value)
            self._inflight.pop(key, None)
        flight.value = value
        flight.event.set()
        return value

    # ------------------------------------------------------------------ #
    def invalidate(self, archive_id: Optional[Tuple] = None) -> int:
        """Drop cached entries; returns how many were removed.

        ``archive_id`` is the key prefix readers use — ``(st_dev, st_ino)``
        drops every generation of one archive, ``(st_dev, st_ino, generation)``
        just one.  ``None`` clears everything.  In-flight decodes are left to
        finish (their result lands under its original key and ages out).
        """
        with self._lock:
            if archive_id is None:
                dropped = len(self._lru)
                self._lru.clear()
                return dropped
            prefix = tuple(archive_id)
            victims = [
                key
                for key in self._lru.keys()
                if isinstance(key, tuple) and key[: len(prefix)] == prefix
            ]
            for key in victims:
                self._lru.discard(key)
            return len(victims)

    def clear(self) -> None:
        """Drop every cached entry (counters are kept)."""
        self.invalidate(None)

    @property
    def stats(self) -> Dict[str, int]:
        """LRU counters plus the single-flight ``coalesced`` count."""
        with self._lock:
            payload = dict(self._lru.stats)
            payload["coalesced"] = self.coalesced
            payload["inflight"] = len(self._inflight)
        return payload

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._lru.nbytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)


_process_cache: Optional[SharedChunkCache] = None
_process_cache_lock = threading.Lock()


def process_chunk_cache() -> SharedChunkCache:
    """The lazily created process-wide cache (``shared_cache=True`` readers)."""
    global _process_cache
    with _process_cache_lock:
        if _process_cache is None:
            _process_cache = SharedChunkCache()
        return _process_cache
