"""Random-access reads from ``XFA1`` archives.

:class:`ArchiveReader` opens an archive footer-first, keeps the JSON manifest
in memory, and serves :meth:`~ArchiveReader.read_region` requests by touching
only the chunks that intersect the requested slices — each chunk is one
``seek`` + ``read`` + CRC check + decode, with decoded chunks kept in an LRU
cache so repeated reads of nearby regions are served hot.

Multi-chunk reads and :meth:`~ArchiveReader.verify` fan chunks out through the
shared :class:`~repro.parallel.engine.ChunkScheduler` (the same engine the
writer compresses through): payload I/O goes through a
:class:`~repro.store.bytestore.ByteStore` backend — lock-free zero-copy slices
on the default mmap backend, one seek/read mutex on the file backend — codec
decodes run outside every lock, and decoded chunks are assembled into a
preallocated output array as they arrive, in completion order.  ``jobs=1``
(or ``executor_kind="serial"``) restores the serial reference loop.

The chunk-fetch engine lives in :class:`ChunkFetcher`, shared with
:class:`~repro.store.writer.ArchiveWriter`: the writer uses the same code to
reconstruct anchor chunks for cross-field fields, guaranteeing that encode and
decode see bit-identical anchor data.  Readers can additionally plug into a
process-wide :class:`~repro.store.shared_cache.SharedChunkCache`
(``shared_cache=True``) so concurrent readers of one archive decode every hot
chunk exactly once.
"""

from __future__ import annotations

import inspect
import math
import os
import threading
import time
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.obs import recorder as _obs
from repro.parallel.engine import ChunkScheduler
from repro.store.bytestore import ByteStore, FileByteStore, open_bytestore
from repro.store.cache import DEFAULT_CACHE_BYTES, LRUChunkCache, freeze_chunk
from repro.store.codecs import Codec, get_codec
from repro.store.shared_cache import SharedChunkCache, process_chunk_cache
from repro.store.manifest import (
    ArchiveCorruptionError,
    ArchiveError,
    ArchiveManifest,
    ChunkEntry,
    FieldEntry,
    TimestepEntry,
    chunks_intersecting_region,
    normalize_region,
    read_manifest,
    recover_manifest,
)

__all__ = ["ArchiveReader", "ChunkFetcher"]

PathLike = Union[str, os.PathLike]


def _validate_preview_fraction(fraction) -> float:
    """Check a preview byte-budget at the reader boundary.

    Returns the value as ``float``.  Anything outside the finite ``(0, 1]``
    interval raises :class:`ValueError` *before* it can reach the codec or
    pollute the fraction-keyed preview cache — values ``> 1`` used to clamp
    silently (while caching under the unclamped key) and values ``<= 0`` /
    non-finite failed deep inside the codec or not at all.
    """
    value = float(fraction)
    if not math.isfinite(value) or not 0.0 < value <= 1.0:
        raise ValueError(f"preview fraction must be in (0, 1], got {fraction!r}")
    return value


class ChunkFetcher:
    """Reads, CRC-verifies, decodes and caches chunks of one archive.

    ``store`` is a :class:`~repro.store.bytestore.ByteStore` (a raw binary
    file handle is accepted and wrapped in a borrowed
    :class:`~repro.store.bytestore.FileByteStore`); it must stay open for the
    fetcher's lifetime.  ``lookup`` maps a field name to its
    :class:`FieldEntry`.  Anchor chunks of cross-field fields are fetched
    recursively through the same cache, so decoding one cross-field chunk
    warms the cache for its anchors too.

    When ``shared`` is given, it replaces the private LRU: lookups and
    inserts go to the process-wide
    :class:`~repro.store.shared_cache.SharedChunkCache` under keys prefixed
    with ``archive_id`` (the reader's ``(st_dev, st_ino, generation)``
    identity), and concurrent misses on one chunk coalesce onto a single
    decode.
    """

    def __init__(
        self,
        store,
        lookup: Callable[[str], FieldEntry],
        cache: Optional[LRUChunkCache] = None,
        shared: Optional[SharedChunkCache] = None,
        archive_id: Tuple = (),
    ) -> None:
        if not isinstance(store, ByteStore):
            store = FileByteStore(fh=store)
        self._store = store
        self._lookup = lookup
        self.cache = cache if cache is not None else LRUChunkCache()
        self.shared = shared
        self._archive_id = tuple(archive_id)
        self._codecs: Dict[str, Codec] = {}
        # The LRU cache is not thread-safe, and the file backend serialises
        # seek+read on its own lock; codec decodes run outside both locks so
        # concurrent fetchers (the writer's compression workers reconstructing
        # anchors) only serialise on the cheap I/O and cache bookkeeping.
        # ``io_lock`` is the store's lock where it has one (the file backend)
        # so the writer can take it around its own appends to the handle; the
        # mmap/memory backends read lock-free and the attribute is a dummy.
        self.io_lock = getattr(store, "lock", None) or threading.Lock()
        self._cache_lock = threading.Lock()
        # Per-instance accounting recorder: always on, backs the public
        # ``chunks_decoded`` / ``bytes_read`` properties and ``cache_stats``.
        # The *global* recorder additionally receives stage timings and cache
        # hit/miss counts, but only when telemetry is enabled (its methods are
        # no-ops otherwise).
        self.telemetry = _obs.Recorder()
        # Preview decode reports, keyed like their cache entries; bounded so a
        # long-lived fetcher sweeping many (chunk, fraction) pairs cannot grow
        # it without limit.  Guarded by ``_cache_lock``.
        self._preview_info: "OrderedDict[Tuple, Dict]" = OrderedDict()

    @property
    def store(self) -> ByteStore:
        """The byte-store backend this fetcher reads from."""
        return self._store

    @property
    def chunks_decoded(self) -> int:
        """Number of actual codec decodes performed (cache hits excluded)."""
        return int(self.telemetry.counter("store.read.chunks_decoded"))

    @property
    def bytes_read(self) -> int:
        """Total payload bytes read from disk."""
        return int(self.telemetry.counter("store.read.bytes_in"))

    def codec_for(self, entry: FieldEntry) -> Codec:
        """Instantiate (once) the codec recorded in a field entry."""
        with self._cache_lock:
            if entry.name not in self._codecs:
                self._codecs[entry.name] = get_codec(entry.codec, **entry.codec_params)
            return self._codecs[entry.name]

    def _decode_with(self, codec: Codec, payload: bytes, anchors, scheduler) -> np.ndarray:
        """Call ``codec.decode``, passing ``scheduler`` only where supported.

        Codecs written against the pre-scheduler two-argument ``decode``
        signature (registered externally per the documented extension point)
        must keep working; the capability probe is cached per codec instance.
        """
        if scheduler is not None and self._takes_scheduler(codec):
            return codec.decode(payload, anchors=anchors, scheduler=scheduler)
        return codec.decode(payload, anchors=anchors)

    def _takes_scheduler(self, codec: Codec) -> bool:
        cached = getattr(codec, "_decode_takes_scheduler", None)
        if cached is None:
            try:
                parameters = inspect.signature(codec.decode).parameters
                cached = "scheduler" in parameters or any(
                    p.kind is p.VAR_KEYWORD for p in parameters.values()
                )
            except (TypeError, ValueError):  # pragma: no cover - exotic callables
                cached = False
            codec._decode_takes_scheduler = cached
        return cached

    def read_payload(self, entry: FieldEntry, chunk: ChunkEntry):
        """Read one chunk's raw payload and verify its CRC.

        Returns ``bytes`` on copying backends and a zero-copy ``memoryview``
        on the mmap/memory backends; the CRC runs directly over either.
        Callers receiving a ``memoryview`` must release it when done (the
        decode path does; an mmap store cannot unmap while views are alive).
        """
        recorder = _obs.get_recorder()
        io_start = time.perf_counter()
        payload = self._store.view(chunk.offset, chunk.length)
        recorder.observe("store.read.io_seconds", time.perf_counter() - io_start)
        self.telemetry.count("store.read.bytes_in", len(payload))
        recorder.count("store.read.bytes_in", len(payload))
        if len(payload) != chunk.length:
            if isinstance(payload, memoryview):
                payload.release()
            raise ArchiveCorruptionError(
                f"field {entry.name!r} chunk {chunk.index}: archive truncated "
                f"(wanted {chunk.length} bytes at offset {chunk.offset}, got {len(payload)})"
            )
        crc_start = time.perf_counter()
        crc_ok = (zlib.crc32(payload) & 0xFFFFFFFF) == chunk.crc32
        recorder.observe("store.read.crc_seconds", time.perf_counter() - crc_start)
        if not crc_ok:
            if isinstance(payload, memoryview):
                payload.release()
            raise ArchiveCorruptionError(
                f"field {entry.name!r} chunk {chunk.index}: CRC mismatch, chunk is corrupted"
            )
        return payload

    def get_chunk(
        self,
        name: str,
        index: int,
        refresh: bool = False,
        scheduler: Optional[ChunkScheduler] = None,
        _fresh: Optional[set] = None,
    ) -> np.ndarray:
        """Return the decompressed chunk ``index`` of field ``name`` (cached).

        ``refresh=True`` bypasses the cache lookup and forces a fresh disk
        read + CRC check + decode (used by deep verification); the result
        still replaces the cache entry.  ``scheduler`` is handed to the codec
        so a decode can parallelise *within* the chunk (checkpointed Huffman
        sub-blocks); callers must only pass one when the calling thread is not
        itself a worker of that scheduler's pool.  ``_fresh`` is deep
        verification's per-pass memo: chunks it already re-decoded in this
        pass may be served from cache again (each chunk is verified exactly
        once per pass even when several cross-field targets share it as an
        anchor).
        """
        recorder = _obs.get_recorder()
        key = (name, int(index))
        if refresh and _fresh is not None and key in _fresh:
            cached = self._cache_get(key, recorder)
            if cached is not None:
                return cached
            # evicted since it was verified: fall through to a fresh decode
        if not refresh:
            if self.shared is not None:
                # single-flight: concurrent misses on this chunk (across every
                # reader sharing the cache) coalesce onto one decode
                return self.shared.get_or_compute(
                    self._archive_id + key,
                    lambda: self._decode_chunk(
                        name, index, refresh, scheduler, _fresh, cache_result=False
                    ),
                )
            cached = self._cache_get(key, recorder)
            if cached is not None:
                return cached
        return self._decode_chunk(name, index, refresh, scheduler, _fresh)

    def _cache_get(self, key, recorder) -> Optional[np.ndarray]:
        """Cache lookup through whichever cache is active, with hit/miss counts."""
        if self.shared is not None:
            return self.shared.get(self._archive_id + key)
        with self._cache_lock:
            cached = self.cache.get(key)
        recorder.count("store.cache.hits" if cached is not None else "store.cache.misses")
        return cached

    def _decode_chunk(
        self,
        name: str,
        index: int,
        refresh: bool,
        scheduler: Optional[ChunkScheduler],
        _fresh: Optional[set],
        cache_result: bool = True,
    ) -> np.ndarray:
        """Read, CRC-check and decode one chunk from the store (no cache lookup).

        ``cache_result=False`` skips the cache insert — the shared cache's
        single-flight path stores the result itself.  The returned array is
        always read-only (:func:`~repro.store.cache.freeze_chunk`).
        """
        recorder = _obs.get_recorder()
        key = (name, int(index))
        entry = self._lookup(name)
        if not 0 <= index < len(entry.chunks):
            raise ArchiveCorruptionError(
                f"field {name!r}: manifest lists {len(entry.chunks)} chunks but the "
                f"chunk grid {entry.grid_counts} implies chunk {index} should exist"
            )
        chunk = entry.chunks[index]
        if chunk.index != index:  # pragma: no cover - manifest is written in order
            raise ArchiveCorruptionError(
                f"field {name!r}: chunk list out of order ({chunk.index} at position {index})"
            )
        payload = self.read_payload(entry, chunk)
        payload_len = len(payload)
        try:
            anchors = None
            if entry.anchors:
                # refresh propagates: a deep verify must not decode the target
                # against stale cached anchors (the memo keeps that one-decode-
                # per-chunk within a single pass)
                anchors = [
                    self.get_chunk(
                        anchor, index, refresh=refresh, scheduler=scheduler, _fresh=_fresh
                    )
                    for anchor in entry.anchors
                ]
            codec = self.codec_for(entry)
            if isinstance(payload, memoryview) and not getattr(
                codec, "decode_accepts_buffer", False
            ):
                # codec insists on real bytes: materialise the view once
                buf = payload.tobytes()
                payload.release()
                payload = buf
            decode_start = time.perf_counter()
            decoded = self._decode_with(codec, payload, anchors, scheduler)
            decode_seconds = time.perf_counter() - decode_start
        finally:
            if isinstance(payload, memoryview):
                payload.release()
        recorder.observe("store.read.decode_seconds", decode_seconds)
        if recorder.enabled:
            recorder.observe(f"store.codec.{entry.codec}.decode_seconds", decode_seconds)
            recorder.count(f"store.codec.{entry.codec}.bytes_in", payload_len)
            recorder.count(f"store.codec.{entry.codec}.bytes_out", int(decoded.nbytes))
        expected_dtype = np.dtype(entry.dtype)
        if decoded.shape != chunk.shape:
            raise ArchiveCorruptionError(
                f"field {name!r} chunk {index}: decoded shape {decoded.shape} "
                f"does not match manifest shape {chunk.shape}"
            )
        if decoded.dtype != expected_dtype:
            decoded = decoded.astype(expected_dtype)
        # cached chunks are shared; freeze before anyone can alias the buffer
        decoded = freeze_chunk(decoded)
        if cache_result:
            if self.shared is not None:
                self.shared.put(self._archive_id + key, decoded)
            else:
                with self._cache_lock:
                    evictions_before = self.cache.evictions
                    self.cache.put(key, decoded)
                    evicted = self.cache.evictions - evictions_before
                if evicted:
                    recorder.count("store.cache.evictions", evicted)
        self.telemetry.count("store.read.chunks_decoded")
        recorder.count("store.read.chunks_decoded")
        recorder.count("store.read.bytes_out", int(decoded.nbytes))
        if _fresh is not None:
            _fresh.add(key)
        return decoded

    _PREVIEW_INFO_MAX = 4096

    def get_chunk_preview(
        self,
        name: str,
        index: int,
        fraction: float,
        scheduler: Optional[ChunkScheduler] = None,
    ) -> Tuple[np.ndarray, Dict]:
        """Decode a coarse preview of one chunk within a byte-budget fraction.

        Returns ``(array, info)`` — ``info`` is the codec's preview report
        (``groups_decoded`` / ``bytes_decoded`` / ``rms_error_estimate`` ...).
        Fields whose codec has no progressive layout fall back to a plain
        :meth:`get_chunk` billed at the full payload size, reported with
        ``fallback: True`` (progressive decodes report ``fallback: False``).
        ``fraction`` must be a finite value in ``(0, 1]``; anything else
        raises :class:`ValueError` here, at the reader boundary, instead of
        flowing into the codec and the preview cache key.  Preview chunks are
        cached in the *private* LRU under keys extended with the fraction, so
        they never alias full-precision entries (and never enter the shared
        cache, which is reserved for full decodes).
        """
        fraction = _validate_preview_fraction(fraction)
        recorder = _obs.get_recorder()
        entry = self._lookup(name)
        codec = self.codec_for(entry)
        if not getattr(codec, "supports_preview", False):
            if not 0 <= index < len(entry.chunks):
                raise ArchiveCorruptionError(
                    f"field {name!r}: manifest lists {len(entry.chunks)} chunks but the "
                    f"chunk grid {entry.grid_counts} implies chunk {index} should exist"
                )
            nbytes = int(entry.chunks[index].length)
            info = {
                "groups_decoded": 1,
                "groups_total": 1,
                "bytes_decoded": nbytes,
                "bytes_total": nbytes,
                "rms_error_estimate": 0.0,
                "fallback": True,
            }
            self.telemetry.count("store.preview.fallback_chunks")
            if recorder.enabled:
                recorder.count("store.preview.fallback_chunks")
            return self.get_chunk(name, index, scheduler=scheduler), info

        key = (name, int(index), "preview", float(fraction))
        with self._cache_lock:
            cached = self.cache.get(key)
            cached_info = self._preview_info.get(key) if cached is not None else None
        if cached is not None and cached_info is not None:
            recorder.count("store.cache.hits")
            return cached, dict(cached_info)
        recorder.count("store.cache.misses")

        if not 0 <= index < len(entry.chunks):
            raise ArchiveCorruptionError(
                f"field {name!r}: manifest lists {len(entry.chunks)} chunks but the "
                f"chunk grid {entry.grid_counts} implies chunk {index} should exist"
            )
        chunk = entry.chunks[index]
        payload = self.read_payload(entry, chunk)
        try:
            if isinstance(payload, memoryview) and not getattr(
                codec, "decode_accepts_buffer", False
            ):
                buf = payload.tobytes()
                payload.release()
                payload = buf
            decode_start = time.perf_counter()
            decoded, info = codec.decode_preview(payload, fraction, scheduler=scheduler)
            decode_seconds = time.perf_counter() - decode_start
            # progressive codecs predate the fallback flag; normalise it here
            # so every preview report carries an explicit verdict
            info = dict(info)
            info.setdefault("fallback", False)
        finally:
            if isinstance(payload, memoryview):
                payload.release()
        if decoded.shape != chunk.shape:
            raise ArchiveCorruptionError(
                f"field {name!r} chunk {index}: preview shape {decoded.shape} "
                f"does not match manifest shape {chunk.shape}"
            )
        expected_dtype = np.dtype(entry.dtype)
        if decoded.dtype != expected_dtype:
            decoded = decoded.astype(expected_dtype)
        decoded = freeze_chunk(decoded)
        with self._cache_lock:
            self.cache.put(key, decoded)
            self._preview_info[key] = dict(info)
            self._preview_info.move_to_end(key)
            while len(self._preview_info) > self._PREVIEW_INFO_MAX:
                self._preview_info.popitem(last=False)
        self.telemetry.count("store.preview.chunks")
        self.telemetry.count("store.preview.bytes_decoded", int(info["bytes_decoded"]))
        self.telemetry.count("store.preview.bytes_total", int(info["bytes_total"]))
        if recorder.enabled:
            recorder.observe("store.preview.decode_seconds", decode_seconds)
            recorder.count("store.preview.chunks")
            recorder.count("store.preview.bytes_decoded", int(info["bytes_decoded"]))
            recorder.count("store.preview.bytes_total", int(info["bytes_total"]))
        return decoded, dict(info)


class ArchiveReader:
    """Random-access reader for one ``XFA1`` archive file.

    Parameters
    ----------
    path:
        The archive file.
    cache_bytes / cache_entries:
        Decoded-chunk LRU cache budget (see :class:`LRUChunkCache`); ignored
        when ``shared_cache`` routes chunks to the process-wide cache.
    jobs:
        Worker count for multi-chunk reads and verification: ``None`` sizes
        the pool to the machine, ``1`` decodes serially in the calling thread.
    executor_kind:
        ``"thread"`` (default — codecs release the GIL) or ``"serial"``.
    recover:
        When the newest footer is torn (an append session crashed mid-write,
        or the file was truncated), scan backwards for the last fully flushed
        manifest instead of raising — the reader then serves everything the
        archive had durably published at that point.  The file itself is not
        modified.
    backend:
        I/O backend: ``"auto"`` (default — mmap where possible, file
        otherwise), ``"mmap"`` (lock-free zero-copy reads), or ``"file"``
        (classic seek/read under one lock).  See
        :mod:`repro.store.bytestore`.
    shared_cache:
        ``None``/``False`` keeps the private per-reader LRU.  ``True`` plugs
        into the lazily created process-wide
        :class:`~repro.store.shared_cache.SharedChunkCache`; a
        ``SharedChunkCache`` instance uses that cache.  Shared entries are
        keyed by archive identity *and* manifest generation (the published
        footer's end offset), so readers opened before and after an append
        never see each other's chunks.

    The reader is safe to share between threads: the byte store and the
    chunk cache are internally synchronised, and decodes run outside every
    lock.

    Examples
    --------
    >>> from repro.store import ArchiveReader  # doctest: +SKIP
    >>> with ArchiveReader("snapshot.xfa") as reader:  # doctest: +SKIP
    ...     window = reader.read_region("T", (slice(0, 10), slice(40, 80)))
    """

    def __init__(
        self,
        path: PathLike,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        cache_entries: Optional[int] = None,
        jobs: Optional[int] = None,
        executor_kind: str = "thread",
        recover: bool = False,
        backend: str = "auto",
        shared_cache: Union[None, bool, SharedChunkCache] = None,
    ) -> None:
        if executor_kind == "process":
            # chunk fetches close over the reader's byte store and cache
            raise ValueError(
                "archive reads support executor_kind 'thread' or 'serial' "
                "(chunk fetches share one byte store and cache)"
            )
        if shared_cache is True:
            shared: Optional[SharedChunkCache] = process_chunk_cache()
        elif isinstance(shared_cache, SharedChunkCache):
            shared = shared_cache
        elif shared_cache in (None, False):
            shared = None
        else:
            raise ValueError(
                "shared_cache must be None, a bool, or a SharedChunkCache instance"
            )
        # reuse_pool: region reads are many-small-batches; per-call pool
        # construction would rival the decode cost of a few-chunk read
        self._scheduler = ChunkScheduler(jobs=jobs, executor_kind=executor_kind, reuse_pool=True)
        self.path = Path(path)
        self._closed = False
        self._store: Optional[ByteStore] = open_bytestore(self.path, backend)
        try:
            try:
                self.manifest, _, published_end = read_manifest(self._store)
            except ArchiveError:
                if not recover:
                    raise
                self.manifest, published_end = recover_manifest(self._store)
        except Exception:
            self._scheduler.close()
            self._store.close()
            self._store = None
            self._closed = True
            raise
        #: Manifest generation: the published end offset of the footer this
        #: reader's manifest came from.  Monotonic per archive — every append
        #: flush publishes a footer at a strictly larger offset — so it doubles
        #: as the shared-cache generation token.
        self.generation = int(published_end)
        stat = os.stat(self.path)
        self._archive_id = (stat.st_dev, stat.st_ino, self.generation)
        self._fetcher = ChunkFetcher(
            self._store,
            self.manifest.__getitem__,
            LRUChunkCache(max_bytes=cache_bytes, max_entries=cache_entries),
            shared=shared,
            archive_id=self._archive_id,
        )

    @property
    def backend(self) -> str:
        """Name of the resolved I/O backend (``"mmap"`` / ``"file"``)."""
        store = self._store
        return store.name if store is not None else "closed"

    def close(self) -> None:
        """Release the byte store and the worker pool (idempotent).

        The mmap backend unmaps deterministically here — not at GC time — and
        raises ``BufferError`` if zero-copy payload views are still alive
        (always a caller-side leak; the read path releases its views).
        """
        if self._closed:
            return
        self._scheduler.close()
        if self._store is not None:
            self._store.close()  # BufferError on leaked views propagates
            self._store = None
        self._closed = True

    def __enter__(self) -> "ArchiveReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed or self._store is None:
            raise ArchiveError("archive reader is closed")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def names(self) -> List[str]:
        """Stored field names in write order."""
        return self.manifest.names

    @property
    def attrs(self) -> Dict:
        """Archive-level attributes recorded at write time."""
        return self.manifest.attrs

    def field(self, name: str) -> FieldEntry:
        """Manifest entry of one field."""
        return self.manifest[name]

    def fields(self) -> List[FieldEntry]:
        """All manifest entries in write order."""
        return [self.manifest[name] for name in self.names]

    def cache_stats(self) -> Dict[str, int]:
        """Chunk-cache statistics plus decode/IO counters.

        ``chunks_decoded`` / ``bytes_read`` are always this reader's own work;
        with a shared cache the hit/miss/coalesced numbers come from the
        (process-wide) shared cache under the ``"shared"`` key.
        """
        stats: Dict = self._fetcher.cache.stats
        stats["chunks_decoded"] = self._fetcher.chunks_decoded
        stats["bytes_read"] = self._fetcher.bytes_read
        if self._fetcher.shared is not None:
            stats["shared"] = self._fetcher.shared.stats
        return stats

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def read_field(self, name: str, preview_fraction: Optional[float] = None) -> np.ndarray:
        """Decompress and return one whole field.

        ``preview_fraction`` requests a coarse progressive preview instead of
        the full-precision decode — see :meth:`read_region`.
        """
        return self.read_region(name, None, preview_fraction=preview_fraction)

    def read_region(
        self, name: str, region=None, preview_fraction: Optional[float] = None
    ) -> np.ndarray:
        """Return the sub-array of ``name`` selected by ``region``.

        ``region`` is a tuple of slices/ints (trailing axes default to full
        extent; ``None`` reads the whole field).  Only chunks intersecting the
        region are read from disk and decompressed; multi-chunk regions are
        fetched and decoded in parallel through the reader's scheduler and
        assembled into one preallocated output array as they complete.

        ``preview_fraction`` (0 < f) asks each chunk's codec for a coarse
        preview decoded from roughly that fraction of its entropy payload —
        supported by ``zfp`` fields with the grouped progressive layout;
        other fields silently fall back to a full decode.  Use
        :meth:`read_region_preview` to also get the decode report (bytes
        touched, error estimate).
        """
        if preview_fraction is not None:
            out, _ = self.read_region_preview(name, region, fraction=preview_fraction)
            return out
        self._require_open()
        entry = self.manifest[name]
        sls = normalize_region(entry.shape, region)
        out_shape = tuple(sl.stop - sl.start for sl in sls)
        out = np.empty(out_shape, dtype=np.dtype(entry.dtype))
        indices = chunks_intersecting_region(entry.shape, entry.chunk_shape, sls)

        # A single-chunk read has no chunk-level parallelism to exploit, so
        # hand the reader's scheduler *into* the decode instead: the codec can
        # fan checkpointed entropy sub-blocks out across the same pool.  Safe
        # precisely because the one-task case below runs in the calling
        # thread, never inside one of the scheduler's own workers.
        intra = self._scheduler if len(indices) == 1 else None

        def fetch(index: int) -> Tuple[int, np.ndarray]:
            # get_chunk first: it bounds-checks `index` against the (possibly
            # malformed) manifest chunk list before we index into it
            return index, self._fetcher.get_chunk(name, index, scheduler=intra)

        # Unordered collection: each worker does one seek+read under io_lock
        # and decodes outside every lock; the main thread writes each decoded
        # chunk into its slot as soon as it arrives (slots are disjoint).
        with _obs.span("store.read.region_seconds", field=name, chunks=len(indices)):
            for _, (index, chunk) in self._scheduler.imap_unordered(fetch, indices):
                chunk_entry = entry.chunks[index]
                dest, src = _overlap(sls, chunk_entry.start, chunk_entry.stop)
                out[dest] = chunk[src]
        return out

    def read_region_preview(
        self, name: str, region=None, fraction: float = 0.25
    ) -> Tuple[np.ndarray, Dict]:
        """Coarse progressive read of a region, with its decode report.

        Like :meth:`read_region`, but each intersecting chunk is decoded from
        (roughly) the first ``fraction`` of its entropy payload via the
        codec's progressive layout.  Returns ``(array, info)`` where ``info``
        aggregates over the touched chunks: ``chunks``, ``groups_decoded`` /
        ``groups_total``, ``bytes_decoded`` / ``bytes_total``, and
        ``rms_error_estimate`` (point-count-weighted RMS over the chunks —
        an upper-level view of the energy left in the dropped coefficient
        groups; 0.0 when everything decoded in full).  ``fallback`` is True
        when the field's codec has no progressive layout and the "preview"
        was served as a full decode billed at full payload size; clients
        (the CLI and the HTTP service surface it) should not mistake it for
        a cheap prefix read.  ``fraction`` must be finite and in ``(0, 1]``
        (``ValueError`` otherwise).
        """
        fraction = _validate_preview_fraction(fraction)
        self._require_open()
        entry = self.manifest[name]
        sls = normalize_region(entry.shape, region)
        out_shape = tuple(sl.stop - sl.start for sl in sls)
        out = np.empty(out_shape, dtype=np.dtype(entry.dtype))
        indices = chunks_intersecting_region(entry.shape, entry.chunk_shape, sls)
        intra = self._scheduler if len(indices) == 1 else None

        def fetch(index: int) -> Tuple[int, Tuple[np.ndarray, Dict]]:
            return index, self._fetcher.get_chunk_preview(
                name, index, fraction, scheduler=intra
            )

        totals = {
            "chunks": 0,
            "groups_decoded": 0,
            "groups_total": 0,
            "bytes_decoded": 0,
            "bytes_total": 0,
        }
        energy = 0.0
        points = 0
        fallback_chunks = 0
        with _obs.span("store.preview.region_seconds", field=name, chunks=len(indices)):
            for _, (index, (chunk, info)) in self._scheduler.imap_unordered(fetch, indices):
                chunk_entry = entry.chunks[index]
                dest, src = _overlap(sls, chunk_entry.start, chunk_entry.stop)
                out[dest] = chunk[src]
                totals["chunks"] += 1
                totals["groups_decoded"] += int(info["groups_decoded"])
                totals["groups_total"] += int(info["groups_total"])
                totals["bytes_decoded"] += int(info["bytes_decoded"])
                totals["bytes_total"] += int(info["bytes_total"])
                if info.get("fallback"):
                    fallback_chunks += 1
                n = int(np.prod(chunk_entry.shape))
                energy += float(info["rms_error_estimate"]) ** 2 * n
                points += n
        totals["fraction"] = float(fraction)
        totals["rms_error_estimate"] = float(np.sqrt(energy / points)) if points else 0.0
        # one codec per field: either every chunk fell back or none did
        totals["fallback"] = fallback_chunks > 0
        return out, totals

    # ------------------------------------------------------------------ #
    # time-stepped reads
    # ------------------------------------------------------------------ #
    @property
    def timesteps(self) -> List[TimestepEntry]:
        """The manifest's timestep index, in append order (empty when absent)."""
        return list(self.manifest.timesteps)

    @property
    def steps(self) -> List[int]:
        """Recorded timestep ids, in append order."""
        return self.manifest.steps

    def read_timestep(self, step: int, fields: Optional[List[str]] = None):
        """Decode one timestep into a :class:`~repro.data.fields.FieldSet`.

        The returned fields carry their *base* names (``"FLNT"``, not the
        stored ``"FLNT@3"``).  ``fields`` selects a subset of the step's base
        names.  Chunk decodes fan out through the reader's scheduler exactly
        like :meth:`read_field`; ``temporal-delta`` fields transparently
        resolve their residual chain back to the nearest anchor step.
        """
        from repro.data.fields import Field, FieldSet

        self._require_open()
        entry = self.manifest.timestep(step)
        names = list(fields) if fields is not None else list(entry.fields)
        for name in names:
            if name not in entry.fields:
                raise ArchiveError(
                    f"timestep {entry.step} has no field {name!r}; "
                    f"available: {sorted(entry.fields)}"
                )
        return FieldSet(
            [Field(name, self.read_field(entry.fields[name])) for name in names],
            name=f"step-{entry.step}",
        )

    def read_time_range(
        self,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        fields: Optional[List[str]] = None,
    ):
        """Decode every timestep with ``start <= step < stop``.

        Returns a list of ``(TimestepEntry, FieldSet)`` pairs in step order;
        ``None`` bounds are open.  Selecting a contiguous range that begins
        mid-chain is still O(range + anchor distance): the chunk cache keeps
        each intermediate delta decode from repeating per step.
        """
        self._require_open()
        selected = [
            entry
            for entry in self.manifest.timesteps
            if (start is None or entry.step >= int(start))
            and (stop is None or entry.step < int(stop))
        ]
        return [(entry, self.read_timestep(entry.step, fields=fields)) for entry in selected]

    # ------------------------------------------------------------------ #
    # integrity
    # ------------------------------------------------------------------ #
    def verify(self, deep: bool = False) -> Dict:
        """Check every chunk of every field.

        Shallow verification re-reads each payload and checks its CRC; with
        ``deep=True`` each chunk is instead read, CRC-checked, decompressed
        and validated against the manifest in one pass.  Both modes always
        read from disk — chunks cached by earlier reads are not trusted.
        Returns a report ``{"ok": bool, "fields": {name: {...}}, "errors": [...]}``.
        """
        self._require_open()
        report: Dict = {"ok": True, "fields": {}, "errors": []}
        fresh: set = set()  # chunks already re-decoded in this pass
        for entry in self.fields():
            field_report = {"chunks": len(entry.chunks), "ok": True}
            expected_chunks = int(np.prod(entry.grid_counts))
            if len(entry.chunks) != expected_chunks:
                # the read path would reject this field; verify must agree
                field_report["ok"] = False
                report["ok"] = False
                report["errors"].append(
                    f"field {entry.name!r}: manifest lists {len(entry.chunks)} chunks "
                    f"but the chunk grid {entry.grid_counts} requires {expected_chunks}"
                )

            def check(chunk: ChunkEntry, entry: FieldEntry = entry) -> Optional[str]:
                try:
                    if deep:
                        self._fetcher.get_chunk(entry.name, chunk.index, refresh=True, _fresh=fresh)
                    else:
                        self._fetcher.read_payload(entry, chunk)
                # verify is a diagnostic: a CRC-consistent but malformed
                # payload makes the codec raise backend-specific errors
                # (zlib.error, struct.error, ...) that must become report
                # entries, not tracebacks
                except Exception as exc:
                    return _chunk_error_message(entry.name, chunk.index, exc)
                return None

            # Fields are verified one after another (write order, so anchors
            # are re-decoded before the cross-field targets that consume
            # them), but the chunks *within* a field check in parallel: with
            # aligned grids, chunk i of a target only touches chunk i of its
            # anchors, so concurrent tasks never race on the same chunk.
            # Ordered collection keeps the error list deterministic.
            with _obs.span("store.verify.field_seconds", field=entry.name, deep=deep):
                errors = [
                    e for e in self._scheduler.map(check, entry.chunks) if e is not None
                ]
            if errors:
                field_report["ok"] = False
                report["ok"] = False
                report["errors"].extend(errors)
            report["fields"][entry.name] = field_report
        return report


def _chunk_error_message(name: str, index: int, exc: Exception) -> str:
    """A verify-report entry that always names the field and chunk.

    :class:`ArchiveCorruptionError` messages already carry their own
    ``field ... chunk ...`` context; bare codec-backend errors (``zlib.error``,
    ``struct.error``, ...) do not, and a bare ``str(exc)`` is useless in a
    multi-field report — prefix those with the failing chunk's coordinates.
    """
    prefix = f"field {name!r} chunk {index}"
    message = str(exc)
    if prefix in message:
        return message
    return f"{prefix}: {message}"


def _overlap(
    region: Tuple[slice, ...], start: Tuple[int, ...], stop: Tuple[int, ...]
) -> Tuple[Tuple[slice, ...], Tuple[slice, ...]]:
    """Destination (region-relative) and source (chunk-relative) overlap slices."""
    dest: List[slice] = []
    src: List[slice] = []
    for sl, c0, c1 in zip(region, start, stop):
        lo = max(sl.start, c0)
        hi = min(sl.stop, c1)
        dest.append(slice(lo - sl.start, hi - sl.start))
        src.append(slice(lo - c0, hi - c0))
    return tuple(dest), tuple(src)
