"""``repro`` — command line interface to the archive store and the pipeline.

Store subcommands drive the ``XFA1`` archive end-to-end::

    repro pack cesm snapshot.xfa --error-bound 1e-3          # synthetic dataset
    repro pack ./fieldset_dir snapshot.xfa --codec zfp       # SDRBench-style dir
    repro ls snapshot.xfa
    repro extract snapshot.xfa FLNT --region 10:40,80:160 -o flnt.npy
    repro preview snapshot.xfa FLNT --fraction 0.25         # coarse prefix decode
    repro verify snapshot.xfa --deep
    repro unpack snapshot.xfa ./restored

Time-stepped archives append one fieldset per invocation and list their
timestep index (see ``docs/timeseries.md``)::

    repro append series.xfa ./step0_dir --create --temporal delta
    repro append series.xfa ./step1_dir --time 0.5
    repro steps series.xfa

Pipeline subcommands (see :mod:`repro.pipeline` and ``docs/pipeline.md``)
run configuration-driven workloads::

    repro run --list                         # registered scenarios
    repro run cross-field -o cf.xfa          # scenario -> verified archive
    repro compress config.json               # PipelineConfig JSON -> archive
    repro decompress snapshot.xfa ./restored # archive -> fieldset directory

``pack`` accepts either a directory previously written by
:func:`repro.data.io.write_fieldset` (a ``manifest.json`` plus raw binary
fields) or the name of a synthetic dataset generator (``cesm``, ``scale``,
``hurricane``).  ``--cross-field TARGET=A1,A2`` stores a field with the
cross-field codec anchored on other fields of the same archive; ``compress``
expresses the same (and per-field codecs/bounds) declaratively in JSON.

Installed as a console script via ``setup.py`` (``pip install -e .`` puts
``repro`` on the PATH); ``python -m repro.store.cli`` works without install.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.store.manifest import ArchiveError

__all__ = ["main", "build_parser", "parse_region"]


# --------------------------------------------------------------------------- #
# argument helpers
# --------------------------------------------------------------------------- #
def parse_region(text: str) -> Tuple[slice, ...]:
    """Parse a region string like ``"0:10,5:20"`` / ``"3,:,40:80"`` into slices.

    Every comma-separated token is either ``start:stop`` (half-open, either
    side may be empty), a bare integer (single index, axis kept), or ``:``
    (full axis).
    """
    region: List = []
    for token in text.split(","):
        token = token.strip()
        if token == ":" or token == "":
            region.append(slice(None))
        elif ":" in token:
            parts = token.split(":")
            if len(parts) != 2:
                raise ValueError(
                    f"region token {token!r} must be start:stop (step is not supported; "
                    "chunked reads materialise contiguous spans)"
                )
            lo = int(parts[0]) if parts[0].strip() else None
            hi = int(parts[1]) if parts[1].strip() else None
            region.append(slice(lo, hi))
        else:
            region.append(int(token))
    return tuple(region)


def _parse_chunk_shape(text: Optional[str]) -> Optional[Tuple[int, ...]]:
    if not text:
        return None
    return tuple(int(tok) for tok in text.split(","))


def _parse_cross_field(specs: Sequence[str]) -> Dict[str, Tuple[str, ...]]:
    mapping: Dict[str, Tuple[str, ...]] = {}
    for spec in specs:
        target, sep, anchor_text = spec.partition("=")
        anchors = tuple(a.strip() for a in anchor_text.split(",") if a.strip())
        if not sep or not target.strip() or not anchors:
            raise ArchiveError(
                f"bad --cross-field spec {spec!r}; expected TARGET=ANCHOR1[,ANCHOR2,...]"
            )
        mapping[target.strip()] = anchors
    return mapping


def _load_source_fieldset(source: str, shape: Optional[str], seed: Optional[int]):
    """Resolve the ``pack`` source: a fieldset directory or a generator name."""
    from repro.data.io import read_fieldset
    from repro.data.synthetic import make_dataset, resolve_dataset_name

    path = Path(source)
    is_dataset = resolve_dataset_name(source) is not None
    if path.is_dir():
        # an existing directory always wins over a generator name: silently
        # packing synthetic data instead of the user's files would be worse
        # than any error
        if (path / "manifest.json").exists():
            if shape or seed is not None:
                raise ArchiveError(
                    "--shape/--seed only apply to synthetic dataset sources, "
                    f"but {source!r} is a fieldset directory"
                )
            return read_fieldset(path)
        if is_dataset:
            raise ArchiveError(
                f"pack source {source!r} is both a directory (without a manifest.json) and "
                "a synthetic dataset name; rename the directory, run from elsewhere, or "
                "point at a packed fieldset"
            )
        raise ArchiveError(
            f"pack source {source!r} is a directory without a manifest.json "
            "(not a packed fieldset) and not a known synthetic dataset name"
        )
    if is_dataset:
        # generator errors (bad --shape rank, ...) propagate with their own message
        return make_dataset(source, shape=_parse_chunk_shape(shape), seed=seed)
    raise ArchiveError(
        f"pack source {source!r} is neither a fieldset directory (with manifest.json) "
        "nor a known synthetic dataset name"
    )


def _check_entropy(entropy: str, codec: str) -> str:
    """Validate ``--entropy`` against the coder registry and the chosen codec."""
    import inspect

    from repro.encoding.entropy import get_entropy_coder
    from repro.store.codecs import codec_class

    get_entropy_coder(entropy)  # unknown names raise, listing the registry
    parameters = inspect.signature(codec_class(codec).__init__).parameters
    if "entropy" not in parameters and not any(
        p.kind is p.VAR_KEYWORD for p in parameters.values()
    ):
        raise ArchiveError(
            f"--entropy does not apply to codec {codec!r} (it has no entropy stage)"
        )
    return entropy


def _human_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024.0 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    return f"{n:.1f} GB"  # pragma: no cover - unreachable


# --------------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------------- #
def _cmd_pack(args: argparse.Namespace) -> int:
    from repro.store.writer import ArchiveWriter
    from repro.sz.errors import ErrorBound

    codec_params = {}
    if args.entropy is not None:
        codec_params["entropy"] = _check_entropy(args.entropy, args.codec)
    fieldset = _load_source_fieldset(args.source, args.shape, args.seed)
    if args.fields:
        fieldset = fieldset.subset([f.strip() for f in args.fields.split(",")])
    cross_field = _parse_cross_field(args.cross_field)
    error_bound = (
        ErrorBound.absolute(args.error_bound)
        if args.mode == "abs"
        else ErrorBound.relative(args.error_bound)
    )
    with ArchiveWriter(
        args.archive,
        codec=args.codec,
        error_bound=error_bound,
        chunk_shape=_parse_chunk_shape(args.chunk),
        max_workers=args.workers if args.workers is not None else args.jobs,
        attrs={"source": str(args.source), "dataset": fieldset.name},
    ) as writer:
        entries = writer.add_fieldset(fieldset, cross_field=cross_field, **codec_params)
    total_in = sum(e.original_nbytes for e in entries.values())
    total_out = sum(e.compressed_nbytes for e in entries.values())
    ratio = total_in / total_out if total_out else float("inf")
    print(
        f"packed {len(entries)} fields into {args.archive}: "
        f"{_human_bytes(total_in)} -> {_human_bytes(total_out)} (ratio {ratio:.2f}x)"
    )
    return 0


def _format_codec_params(params: Dict) -> str:
    """Compact ``k=v`` rendering of manifest codec parameters for listings.

    Error bounds collapse to ``mode:value`` and nested dicts (a temporal-delta
    codec's ``base_params``) render recursively, so the whole manifest-recorded
    configuration of a field is visible in one column.
    """
    parts = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, dict):
            if set(value) == {"mode", "value"}:  # an ErrorBound dict
                rendered = f"{value['mode']}:{value['value']:g}"
            elif not value:
                continue
            else:
                rendered = "{" + _format_codec_params(value) + "}"
        else:
            rendered = f"{value}"
        parts.append(f"{key}={rendered}")
    return " ".join(parts) if parts else "-"


def _cmd_ls(args: argparse.Namespace) -> int:
    from repro.store.reader import ArchiveReader

    with ArchiveReader(args.archive, backend=args.io_backend) as reader:
        if args.json:
            payload = [entry.to_dict() for entry in reader.fields()]
            for entry in payload:
                entry.pop("chunks")  # offsets are noise for a listing
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(f"{'field':<12} {'shape':<16} {'dtype':<8} {'codec':<12} "
              f"{'chunks':>6} {'size':>10} {'ratio':>7}  {'anchors':<14} params")
        for entry in reader.fields():
            anchors = ",".join(entry.anchors) if entry.anchors else "-"
            print(
                f"{entry.name:<12} {'x'.join(map(str, entry.shape)):<16} {entry.dtype:<8} "
                f"{entry.codec:<12} {len(entry.chunks):>6} "
                f"{_human_bytes(entry.compressed_nbytes):>10} {entry.ratio:>6.2f}x  "
                f"{anchors:<14} {_format_codec_params(entry.codec_params)}"
            )
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    from repro.store.reader import ArchiveReader

    region = parse_region(args.region) if args.region else None
    with ArchiveReader(args.archive, jobs=args.jobs, backend=args.io_backend) as reader:
        data = reader.read_region(args.field, region)
        stats = reader.cache_stats()
    if args.output:
        np.save(args.output, data)
        destination = args.output if str(args.output).endswith(".npy") else f"{args.output}.npy"
        print(f"wrote {destination}: shape {data.shape}, dtype {data.dtype}")
    print(
        f"{args.field}{' ' + args.region if args.region else ''}: shape {tuple(data.shape)}, "
        f"min {data.min():.6g}, max {data.max():.6g}, mean {data.mean():.6g} "
        f"({stats['chunks_decoded']} chunks decompressed)"
    )
    return 0


def _cmd_preview(args: argparse.Namespace) -> int:
    from repro.store.reader import ArchiveReader

    region = parse_region(args.region) if args.region else None
    with ArchiveReader(args.archive, jobs=args.jobs, backend=args.io_backend) as reader:
        data, info = reader.read_region_preview(
            args.field, region, fraction=args.fraction
        )
    if args.output:
        np.save(args.output, data)
        destination = args.output if str(args.output).endswith(".npy") else f"{args.output}.npy"
        print(f"wrote {destination}: shape {data.shape}, dtype {data.dtype}")
    pct = 100.0 * info["bytes_decoded"] / info["bytes_total"] if info["bytes_total"] else 100.0
    print(
        f"{args.field}{' ' + args.region if args.region else ''} @ fraction {args.fraction:g}: "
        f"shape {tuple(data.shape)}, min {data.min():.6g}, max {data.max():.6g}, "
        f"mean {data.mean():.6g}"
    )
    print(
        f"decoded {info['groups_decoded']}/{info['groups_total']} coefficient groups, "
        f"{_human_bytes(info['bytes_decoded'])} of {_human_bytes(info['bytes_total'])} "
        f"entropy bytes ({pct:.1f}%), rms error estimate {info['rms_error_estimate']:.6g} "
        f"({info['chunks']} chunks)"
    )
    if info.get("fallback"):
        print(
            f"note: {args.field}'s codec has no progressive layout — this was a "
            "full decode billed at full payload size, not a partial preview"
        )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.store.reader import ArchiveReader

    with ArchiveReader(args.archive, jobs=args.jobs, backend=args.io_backend) as reader:
        report = reader.verify(deep=args.deep)
    mode = "deep" if args.deep else "crc"
    for name, field_report in report["fields"].items():
        status = "ok" if field_report["ok"] else "CORRUPTED"
        print(f"{name:<12} {field_report['chunks']:>5} chunks  {status}")
    for error in report["errors"]:
        print(f"error: {error}", file=sys.stderr)
    print(f"{mode} verification {'passed' if report['ok'] else 'FAILED'}")
    return 0 if report["ok"] else 1


def _cmd_unpack(args: argparse.Namespace) -> int:
    from repro.data.fields import Field, FieldSet
    from repro.data.io import write_fieldset
    from repro.store.reader import ArchiveReader

    with ArchiveReader(args.archive, jobs=args.jobs, backend=args.io_backend) as reader:
        names = (
            [f.strip() for f in args.fields.split(",")] if args.fields else reader.names
        )
        fieldset = FieldSet(
            [Field(name, reader.read_field(name)) for name in names],
            name=str(reader.attrs.get("dataset", "archive")),
        )
        # preserve the archive's precision: write_fieldset stores one dtype
        # for the whole set, so promote to the widest stored dtype
        dtype = np.result_type(*[np.dtype(reader.field(name).dtype) for name in names])
    write_fieldset(fieldset, args.destination, dtype=dtype)
    print(f"unpacked {len(names)} fields to {args.destination} (dtype {dtype})")
    return 0


# --------------------------------------------------------------------------- #
# time-stepped subcommands
# --------------------------------------------------------------------------- #
def _append_inherited_rules(manifest, names, inherit_bound, inherit_codec, entropy) -> Dict:
    """Per-field rules continuing a recorded stream's codec configuration.

    An append that does not restate ``--error-bound`` / ``--codec`` /
    ``--entropy`` must keep each field's recorded fidelity, codec *and* codec
    parameters (a silent reset to the CLI defaults could loosen the bound by
    orders of magnitude or switch the entropy coder mid-stream); the
    manifest's latest occurrence of each field is the source of truth.  An
    explicit ``--entropy`` wins over the recorded one.
    """
    from repro.sz.errors import ErrorBound

    latest: Dict[str, str] = {}
    for ts in manifest.timesteps:
        for base, stored in ts.fields.items():
            latest[base] = stored
    rules: Dict[str, Dict] = {}
    for name in names:
        stored = latest.get(name)
        if stored is None:
            continue
        entry = manifest[stored]
        rule: Dict = {}
        if inherit_bound and entry.error_bound is not None:
            rule["error_bound"] = ErrorBound.from_dict(entry.error_bound)
        if inherit_codec:
            if entry.codec == "temporal-delta":
                rule["codec"] = entry.codec_params.get("base", "sz")
                params = dict(entry.codec_params.get("base_params", {}))
            else:
                rule["codec"] = entry.codec
                params = dict(entry.codec_params)
            # the writer re-resolves the bound itself; an explicit --entropy
            # must not be shadowed by the recorded one (rule params would win)
            params.pop("error_bound", None)
            if entropy is not None:
                params.pop("entropy", None)
            if params:
                rule["codec_params"] = params
        if rule:
            rules[name] = rule
    return rules


def _cmd_append(args: argparse.Namespace) -> int:
    from pathlib import Path as _Path

    from repro.store.temporal import TemporalSpec
    from repro.store.writer import ArchiveWriter
    from repro.sz.errors import ErrorBound

    codec_params = {}
    if args.entropy is not None:
        # validated here against the explicit flags; re-checked below against
        # each field's *effective* (possibly inherited) codec
        codec_params["entropy"] = _check_entropy(args.entropy, args.base or args.codec or "sz")
    fieldset = _load_source_fieldset(args.source, args.shape, args.seed)
    if args.fields:
        fieldset = fieldset.subset([f.strip() for f in args.fields.split(",")])
    bound_given = args.error_bound is not None
    error_bound = (
        ErrorBound.absolute(args.error_bound)
        if args.mode == "abs"
        else ErrorBound.relative(args.error_bound)
    ) if bound_given else ErrorBound.relative(1e-3)
    exists = _Path(args.archive).exists()
    if args.temporal == "none" and (args.anchor_every is not None or args.base is not None):
        raise ArchiveError(
            "--temporal none contradicts --anchor-every/--base; drop the "
            "flags that no longer apply"
        )
    flags_given = (
        args.temporal is not None or args.anchor_every is not None or args.base is not None
    )
    if args.temporal == "none":
        temporal = {}  # explicitly no temporal policy for this step
    elif flags_given:
        temporal = TemporalSpec(
            mode=args.temporal or "delta",
            anchor_every=args.anchor_every if args.anchor_every is not None else 8,
            base=args.base,
        )
    elif not exists:
        # a brand-new stream defaults to delta coding with the stock cadence
        temporal = TemporalSpec()
    else:
        # continue whatever cadence the archive records per field
        temporal = None
    if not exists and not args.create:
        raise ArchiveError(
            f"archive {args.archive} does not exist; pass --create to start a "
            "new time-stepped archive"
        )
    with ArchiveWriter(
        args.archive,
        codec=args.codec or "sz",
        error_bound=error_bound,
        chunk_shape=_parse_chunk_shape(args.chunk),
        max_workers=args.jobs,
        mode="a" if exists else "w",
        recover=args.recover,
        attrs=None if exists else {"source": str(args.source), "dataset": fieldset.name},
    ) as writer:
        field_rules = (
            _append_inherited_rules(
                writer.manifest,
                fieldset.names,
                inherit_bound=not bound_given,
                inherit_codec=args.codec is None and args.base is None,
                entropy=args.entropy,
            )
            if exists
            else {}
        )
        if args.entropy is not None:
            # an inherited codec may have no entropy stage (e.g. lossless);
            # fail with the same clean error `pack` gives, not a TypeError
            # from the codec constructor (the writer rolls back cleanly)
            for name in fieldset.names:
                effective = (
                    field_rules.get(name, {}).get("codec")
                    or args.base or args.codec or "sz"
                )
                _check_entropy(args.entropy, effective)
        entry = writer.add_timestep(
            fieldset,
            step=args.step,
            time=args.time,
            temporal=temporal,
            field_rules=field_rules,
            **codec_params,
        )
        stored = [writer.manifest[name] for name in entry.fields.values()]
        total_in = sum(e.original_nbytes for e in stored)
        total_out = sum(e.compressed_nbytes for e in stored)
        n_delta = sum(1 for e in stored if e.codec == "temporal-delta")
    ratio = total_in / total_out if total_out else float("inf")
    time_tag = f" (t={entry.time:g})" if entry.time is not None else ""
    print(
        f"appended step {entry.step}{time_tag} to {args.archive}: "
        f"{len(stored)} fields ({n_delta} delta, {len(stored) - n_delta} independent), "
        f"{_human_bytes(total_in)} -> {_human_bytes(total_out)} (ratio {ratio:.2f}x)"
    )
    return 0


def _cmd_steps(args: argparse.Namespace) -> int:
    from repro.store.reader import ArchiveReader

    with ArchiveReader(args.archive, recover=args.recover, backend=args.io_backend) as reader:
        timesteps = reader.timesteps
        if args.json:
            payload = []
            for ts in timesteps:
                entry = ts.to_dict()
                entry["compressed_nbytes"] = sum(
                    reader.field(stored).compressed_nbytes for stored in ts.fields.values()
                )
                payload.append(entry)
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if not timesteps:
            print(f"{args.archive}: no timestep index (not a time-stepped archive)")
            return 0
        print(f"{'step':>5} {'time':>10} {'fields':>7} {'delta':>6} {'size':>10}  temporal")
        for ts in timesteps:
            stored = [reader.field(name) for name in ts.fields.values()]
            n_delta = sum(1 for e in stored if e.codec == "temporal-delta")
            size = sum(e.compressed_nbytes for e in stored)
            specs = sorted(
                {
                    f"{spec.get('mode')}/k={spec.get('anchor_every')}"
                    for spec in ts.temporal.values()
                }
            )
            time_text = "-" if ts.time is None else f"{ts.time:g}"
            print(
                f"{ts.step:>5} {time_text:>10} {len(stored):>7} {n_delta:>6} "
                f"{_human_bytes(size):>10}  {','.join(specs) if specs else '-'}"
            )
    return 0


# --------------------------------------------------------------------------- #
# pipeline subcommands
# --------------------------------------------------------------------------- #
def _cmd_run(args: argparse.Namespace) -> int:
    from repro.pipeline import available_scenarios, run_scenario, scenario_table

    if args.list or args.scenario is None:
        print(scenario_table())
        if args.scenario is None and not args.list:
            print("\nusage: repro run <scenario> [-o archive]", file=sys.stderr)
            return 2
        return 0
    output = args.output or f"{args.scenario}.xfa"
    result = run_scenario(
        args.scenario, output, seed=args.seed, verify=not args.no_verify, jobs=args.jobs
    )
    print(result.format())
    random_access = result.extras.get("random_access")
    if random_access:
        print(
            f"random access: read {random_access['field']} region "
            f"{'x'.join(map(str, random_access['region_shape']))} touching "
            f"{random_access['chunks_decoded']}/{random_access['total_chunks']} chunks"
        )
    preview = result.extras.get("preview")
    if preview:
        pct = (
            100.0 * preview["bytes_decoded"] / preview["bytes_total"]
            if preview["bytes_total"]
            else 100.0
        )
        print(
            f"preview: {preview['field']} @ fraction {preview['fraction']:g} decoded "
            f"{preview['groups_decoded']}/{preview['groups_total']} groups, "
            f"{_human_bytes(preview['bytes_decoded'])} of "
            f"{_human_bytes(preview['bytes_total'])} entropy bytes ({pct:.1f}%), "
            f"rms error estimate {preview['rms_error_estimate']:.6g}"
        )
    serving = result.extras.get("serving")
    if serving:
        print(
            f"serving: {serving['ok']}/{serving['requests']} requests ok on "
            f"{serving['field']}, {serving['chunks_decoded']} chunk decodes total "
            f"(shared-cache dedup), p99 {serving['p99_seconds'] * 1e3:.2f} ms"
        )
    if result.verified_ok is False:
        for error in result.verify_report.get("errors", []):
            print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.http import serve
    from repro.serve.service import ArchiveService

    service = ArchiveService(
        list(args.archives), refresh=args.refresh, backend=args.io_backend, jobs=args.jobs
    )
    try:
        if args.frontend == "fastapi":
            try:
                import uvicorn

                from repro.serve.app import create_app
            except ImportError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            uvicorn.run(create_app(service), host=args.host, port=args.port)
            return 0

        def ready(server) -> None:
            print(f"serving {len(service.archive_ids)} archive(s) at {server.url}")
            for archive_id in service.archive_ids:
                handle = service.handle(archive_id)
                print(f"  /archives/{archive_id}  <-  {handle.path} (generation {handle.generation})")
            sys.stdout.flush()
            if args.ready_file:
                # tests and scripts poll this file to learn the bound port
                Path(args.ready_file).write_text(server.url)

        serve(
            service,
            host=args.host,
            port=args.port,
            max_requests=args.max_requests,
            ready_callback=ready,
        )
        handled = int(service.request_stats().get("http.request.count", 0))
        print(f"served {handled} request(s)")
        return 0
    finally:
        service.close()


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro.pipeline import CompressionPipeline, PipelineConfig, PipelineConfigError

    config = PipelineConfig.load(args.config)
    if args.jobs is not None:
        from dataclasses import replace

        config = replace(config, jobs=args.jobs).validate()
    source = args.source or config.source
    output = args.output or config.output
    if source is None:
        raise PipelineConfigError(
            "no source: pass --source or set \"source\" in the config JSON"
        )
    if output is None:
        raise PipelineConfigError(
            "no output: pass --output or set \"output\" in the config JSON"
        )
    fieldset = _load_source_fieldset(str(source), args.shape, args.seed)
    if args.fields:
        fieldset = fieldset.subset([f.strip() for f in args.fields.split(",")])
    result = CompressionPipeline(config).compress(fieldset, output)
    print(result.format())
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    from repro.data.io import write_fieldset
    from repro.pipeline import CompressionPipeline, PipelineConfig

    names = [f.strip() for f in args.fields.split(",")] if args.fields else None
    pipeline = CompressionPipeline(PipelineConfig(jobs=args.jobs))
    fieldset = pipeline.decompress(args.archive, fields=names)
    # preserve the archive's precision: write_fieldset stores one dtype for
    # the whole set, so promote to the widest restored dtype (as `unpack` does)
    dtype = np.result_type(*[fieldset[name].data.dtype for name in fieldset.names])
    write_fieldset(fieldset, args.destination, dtype=dtype)
    print(f"decompressed {len(fieldset)} fields to {args.destination} (dtype {dtype})")
    return 0


# --------------------------------------------------------------------------- #
# telemetry flags
# --------------------------------------------------------------------------- #
def _add_profile_arguments(parser: argparse.ArgumentParser, root: bool) -> None:
    """Attach the global telemetry flags (also accepted after the subcommand).

    Like ``--jobs``, each flag is declared on the root parser with its real
    default and on the shared subcommand parent with ``SUPPRESS``, so a value
    parsed at either position wins and the subparser never clobbers the root.
    """
    flag_default = False if root else argparse.SUPPRESS
    path_default = None if root else argparse.SUPPRESS
    parser.add_argument(
        "--profile",
        action="store_true",
        default=flag_default,
        help="collect telemetry and print a per-stage timing table (stderr)",
    )
    parser.add_argument(
        "--profile-json",
        metavar="PATH",
        default=path_default,
        help="collect telemetry and write the full snapshot as JSON to PATH",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=path_default,
        help="collect telemetry and write trace spans as a Chrome-trace JSON "
        "file to PATH (open in chrome://tracing or Perfetto)",
    )


def _profiling_requested(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "profile", False)
        or getattr(args, "profile_json", None)
        or getattr(args, "trace", None)
    )


def _report_profiling(args: argparse.Namespace, recorder) -> None:
    """Emit the collected telemetry in every requested shape.

    Runs even when the command failed — a partial profile of a failing run is
    exactly what one wants for diagnosis.  The stage table goes to stderr so
    ``--json`` subcommand output on stdout stays machine-parseable.
    """
    from repro.obs import format_stage_table, write_chrome_trace, write_snapshot_json

    snapshot = recorder.snapshot()
    if getattr(args, "profile", False):
        table = format_stage_table(snapshot, title=f"telemetry: repro {args.command}")
        print(table if table else "== telemetry: no metrics recorded ==", file=sys.stderr)
    json_path = getattr(args, "profile_json", None)
    if json_path:
        write_snapshot_json(snapshot, json_path)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        write_chrome_trace(snapshot, trace_path)


# --------------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chunked archive store for error-bounded compressed scientific fields.",
    )
    jobs_help = (
        "worker threads for the chunk execution engine (compression and "
        "decompression; default: auto-sized to the machine, 1 = serial)"
    )
    parser.add_argument("-j", "--jobs", type=int, default=None, metavar="N", help=jobs_help)
    io_backend_help = (
        "archive read backend: mmap (lock-free zero-copy reads), file "
        "(classic seek/read), or auto (default: mmap where possible)"
    )
    parser.add_argument(
        "--io-backend", choices=("auto", "file", "mmap"), default="auto", help=io_backend_help
    )
    _add_profile_arguments(parser, root=True)
    # the same flag is accepted after the subcommand (`repro verify a.xfa -j4`);
    # SUPPRESS keeps the subparser from clobbering a value parsed at the root
    jobs_parent = argparse.ArgumentParser(add_help=False)
    jobs_parent.add_argument(
        "-j", "--jobs", type=int, default=argparse.SUPPRESS, metavar="N", help=jobs_help
    )
    jobs_parent.add_argument(
        "--io-backend",
        choices=("auto", "file", "mmap"),
        default=argparse.SUPPRESS,
        help=io_backend_help,
    )
    _add_profile_arguments(jobs_parent, root=False)
    sub = parser.add_subparsers(dest="command", required=True)

    pack = sub.add_parser("pack", help="compress a fieldset into an archive", parents=[jobs_parent])
    pack.add_argument("source", help="fieldset directory or synthetic dataset name (cesm/scale/hurricane)")
    pack.add_argument("archive", help="output archive path")
    pack.add_argument("--codec", default="sz", help="default codec for all fields (default: sz)")
    pack.add_argument(
        "--entropy",
        help="entropy coder for codecs with an entropy stage "
        "(registered: huffman, zlib, raw; default: the codec's default)",
    )
    pack.add_argument("--error-bound", type=float, default=1e-3, help="error bound value (default: 1e-3)")
    pack.add_argument("--mode", choices=("rel", "abs"), default="rel", help="error bound mode (default: rel)")
    pack.add_argument("--chunk", help="chunk shape, comma separated (default: 64 per axis)")
    pack.add_argument("--fields", help="comma-separated subset of fields to pack")
    pack.add_argument("--workers", type=int, default=None, help="compression worker threads")
    pack.add_argument("--shape", help="grid shape for synthetic datasets, comma separated")
    pack.add_argument("--seed", type=int, default=None, help="seed for synthetic datasets")
    pack.add_argument(
        "--cross-field",
        action="append",
        default=[],
        metavar="TARGET=A1,A2",
        help="store TARGET with the cross-field codec anchored on fields A1,A2 (repeatable)",
    )
    pack.set_defaults(func=_cmd_pack)

    append = sub.add_parser(
        "append",
        help="append one fieldset as a timestep to a time-stepped archive",
        parents=[jobs_parent],
    )
    append.add_argument("archive", help="archive to append to (see --create)")
    append.add_argument("source", help="fieldset directory or synthetic dataset name")
    append.add_argument("--create", action="store_true",
                        help="create the archive if it does not exist yet")
    append.add_argument("--step", type=int, default=None,
                        help="timestep id (default: one past the last step)")
    append.add_argument("--time", type=float, default=None, help="wall-time tag for the step")
    append.add_argument(
        "--temporal", choices=("delta", "independent", "none"), default=None,
        help="time coding: delta residuals with periodic anchors, independent "
        "per-step storage, or none to skip temporal policy (default: continue "
        "the cadence the archive records; delta for a new archive)",
    )
    append.add_argument("--anchor-every", type=int, default=None, metavar="K",
                        help="independent anchor step every K occurrences "
                        "(default: the recorded cadence, 8 for a new archive)")
    append.add_argument("--base", default=None,
                        help="base codec for anchors and delta residuals (default: --codec)")
    append.add_argument("--codec", default=None,
                        help="codec for independent fields (default: each field's "
                        "recorded codec, sz for new fields)")
    append.add_argument(
        "--entropy",
        help="entropy coder for codecs with an entropy stage "
        "(registered: huffman, zlib, raw; default: the codec's default)",
    )
    append.add_argument("--error-bound", type=float, default=None,
                        help="error bound value (default: each field's recorded "
                        "bound, 1e-3 for new fields)")
    append.add_argument("--mode", choices=("rel", "abs"), default="rel",
                        help="error bound mode (default: rel)")
    append.add_argument("--chunk", help="chunk shape for new fields, comma separated")
    append.add_argument("--fields", help="comma-separated subset of fields to append")
    append.add_argument("--shape", help="grid shape for synthetic dataset sources")
    append.add_argument("--seed", type=int, default=None, help="seed for synthetic dataset sources")
    append.add_argument(
        "--recover", action="store_true",
        help="resume past a torn tail left by a crashed append session",
    )
    append.set_defaults(func=_cmd_append)

    steps = sub.add_parser(
        "steps", help="list the timestep index of a time-stepped archive",
        parents=[jobs_parent],
    )
    steps.add_argument("archive")
    steps.add_argument("--json", action="store_true", help="machine-readable output")
    steps.add_argument(
        "--recover", action="store_true",
        help="read through a torn tail (crashed append) via the recovery scan",
    )
    steps.set_defaults(func=_cmd_steps)

    ls = sub.add_parser("ls", help="list the fields of an archive", parents=[jobs_parent])
    ls.add_argument("archive")
    ls.add_argument("--json", action="store_true", help="machine-readable output")
    ls.set_defaults(func=_cmd_ls)

    extract = sub.add_parser("extract", help="read a field (or region) out of an archive", parents=[jobs_parent])
    extract.add_argument("archive")
    extract.add_argument("field")
    extract.add_argument(
        "--region",
        help='region slices, e.g. "0:10,5:20" or "3,:,40:80"; negative bounds need '
        'the = form: --region=-10:,:-5',
    )
    extract.add_argument("-o", "--output", help="write the region to a .npy file")
    extract.set_defaults(func=_cmd_extract)

    preview = sub.add_parser(
        "preview",
        help="coarse progressive read of a field (or region) from payload prefixes",
        parents=[jobs_parent],
    )
    preview.add_argument("archive")
    preview.add_argument("field")
    preview.add_argument(
        "--region",
        help="comma-separated slices, e.g. 10:40,80:160 (default: whole field)",
    )
    preview.add_argument(
        "--fraction",
        type=float,
        default=0.25,
        help="entropy-byte budget per chunk as a fraction of the full payload "
        "(default: 0.25; zfp grouped-layout fields decode a prefix of their "
        "significance groups, other codecs fall back to a full decode)",
    )
    preview.add_argument("-o", "--output", help="write the preview to a .npy file")
    preview.set_defaults(func=_cmd_preview)

    verify = sub.add_parser("verify", help="check chunk CRCs (and optionally decode)", parents=[jobs_parent])
    verify.add_argument("archive")
    verify.add_argument("--deep", action="store_true", help="also decompress every chunk")
    verify.set_defaults(func=_cmd_verify)

    unpack = sub.add_parser("unpack", help="decompress an archive back into a fieldset directory", parents=[jobs_parent])
    unpack.add_argument("archive")
    unpack.add_argument("destination")
    unpack.add_argument("--fields", help="comma-separated subset of fields to unpack")
    unpack.set_defaults(func=_cmd_unpack)

    run = sub.add_parser("run", help="run a registered pipeline scenario end to end", parents=[jobs_parent])
    run.add_argument("scenario", nargs="?", help="scenario name (see: repro run --list)")
    run.add_argument("--list", action="store_true", help="list registered scenarios")
    run.add_argument("-o", "--output", help="archive path (default: <scenario>.xfa)")
    run.add_argument("--seed", type=int, default=0, help="synthetic data seed (default: 0)")
    run.add_argument("--no-verify", action="store_true", help="skip the deep verification pass")
    run.set_defaults(func=_cmd_run)

    serve = sub.add_parser(
        "serve",
        help="serve archives over HTTP (manifest, regions, previews, timesteps) "
        "from one shared chunk cache",
        parents=[jobs_parent],
    )
    serve.add_argument(
        "archives",
        nargs="+",
        metavar="[ID=]ARCHIVE",
        help="archives to serve; prefix a path with ID= to choose its URL id "
        "(default id: the file stem)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8000, help="bind port (default: 8000; 0 picks a free port)"
    )
    serve.add_argument(
        "--refresh",
        choices=("auto", "manual"),
        default="auto",
        help="pick up appended generations automatically on the next request "
        "(auto, default) or only on POST /archives/{id}/refresh (manual)",
    )
    serve.add_argument(
        "--frontend",
        choices=("stdlib", "fastapi"),
        default="stdlib",
        help="HTTP frontend: the dependency-free stdlib server (default) or "
        "the FastAPI app under uvicorn (requires the [serve] extra)",
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="exit after answering N requests (bounded smoke-test sessions)",
    )
    serve.add_argument(
        "--ready-file",
        metavar="PATH",
        help="write the bound URL to PATH once the socket is listening "
        "(lets scripts discover an ephemeral --port 0)",
    )
    serve.set_defaults(func=_cmd_serve)

    compress = sub.add_parser(
        "compress",
        help="compress a fieldset as described by a pipeline config JSON",
        parents=[jobs_parent],
    )
    compress.add_argument("config", help="PipelineConfig JSON file (see docs/pipeline.md)")
    compress.add_argument(
        "--source", help="fieldset directory or synthetic dataset name (overrides config)"
    )
    compress.add_argument("--output", help="archive path to write (overrides config)")
    compress.add_argument("--fields", help="comma-separated subset of fields to compress")
    compress.add_argument("--shape", help="grid shape for synthetic dataset sources")
    compress.add_argument("--seed", type=int, default=None, help="seed for synthetic dataset sources")
    compress.set_defaults(func=_cmd_compress)

    decompress = sub.add_parser(
        "decompress",
        help="decompress an archive into a fieldset directory via the pipeline",
        parents=[jobs_parent],
    )
    decompress.add_argument("archive")
    decompress.add_argument("destination")
    decompress.add_argument("--fields", help="comma-separated subset of fields to restore")
    decompress.set_defaults(func=_cmd_decompress)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console-script entry point; returns the process exit code."""
    from repro.parallel.engine import ChunkTaskError

    parser = build_parser()
    args = parser.parse_args(argv)
    recorder = previous = None
    if _profiling_requested(args):
        from repro import obs

        # A fresh recorder per invocation: the profile covers exactly this
        # command, even when REPRO_TELEMETRY already installed a global one.
        recorder = obs.Recorder()
        previous = obs.set_recorder(recorder)
    try:
        return args.func(args)
    except (ValueError, OSError, KeyError, ChunkTaskError) as exc:
        # ArchiveError/ArchiveCorruptionError are ValueError subclasses; plain
        # ValueError also covers malformed --region/--chunk/--shape strings
        # and unknown codec names; OSError covers missing, unreadable and
        # directory paths; ChunkTaskError wraps per-chunk worker failures
        # (its message names the failing field and chunk).  KeyError.__str__
        # would wrap the message in spurious quotes, so unwrap its argument.
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    finally:
        if recorder is not None:
            from repro import obs

            obs.set_recorder(previous)
            _report_profiling(args, recorder)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CLI docs
    sys.exit(main())
