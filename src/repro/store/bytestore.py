"""Byte-level storage backends for XFA1 archives.

A :class:`ByteStore` is the small I/O abstraction the archive reader and
writer stand on: positioned reads (``pread``), a size probe, and deterministic
``close()``.  It decouples "an archive" from "one ``open()`` handle", which is
what lets parallel chunk fetches stop contending on a single seek/read mutex
and lets future adapters (object stores, sharded datasets) slot in without
touching the reader.

Three implementations ship today:

``FileByteStore``
    The classic seek/read path over a regular file handle, protected by a
    per-store lock (seek and read are one critical section).  It can *borrow*
    an externally owned handle — the archive writer does this so its fetcher
    shares the writer's append handle — or own one opened from a path.

``MmapByteStore``
    A read-only ``mmap`` of the file.  ``pread`` is a lock-free slice (the
    kernel's page cache does the work) and ``view`` returns a zero-copy
    ``memoryview``, so concurrent chunk fetches never serialise on a mutex
    and CRC/decode can consume the mapped pages without an intermediate
    copy.  Safe against concurrent appends: appends only ever add bytes
    after the published footer, and recovery truncation only removes bytes
    past it, so every offset a manifest generation names stays mapped.

``MemoryByteStore``
    Bytes-backed, for tests and future remote adapters that download whole
    archives.

:func:`open_bytestore` picks a backend by name (``"auto"`` prefers mmap and
falls back to the file backend when mapping is impossible, e.g. an empty or
special file).

Telemetry: when a recorder is enabled, stores count ``store.io.pread_calls``
/ ``store.io.pread_bytes`` and time ``store.io.pread_seconds`` per positioned
read, and count ``store.io.view_calls`` / ``store.io.view_bytes`` per
zero-copy view.  All of it is skipped entirely when telemetry is off.
"""

from __future__ import annotations

import mmap
import os
import threading
import time
from abc import ABC, abstractmethod
from pathlib import Path
from typing import BinaryIO, Optional, Union

from repro import obs as _obs

__all__ = [
    "BACKENDS",
    "ByteStore",
    "FileByteStore",
    "MmapByteStore",
    "MemoryByteStore",
    "open_bytestore",
]

PathLike = Union[str, os.PathLike]

#: Recognised backend selectors for :func:`open_bytestore` and the reader/CLI.
BACKENDS = ("auto", "file", "mmap")


class ByteStore(ABC):
    """Positioned-read access to an archive's bytes.

    Implementations must make ``pread`` safe to call from multiple threads;
    whether that needs a lock is the backend's business (the file backend
    locks around seek+read, the mmap and memory backends are naturally
    lock-free).
    """

    #: Short backend identifier (``"file"`` / ``"mmap"`` / ``"memory"``).
    name: str = "bytestore"

    @abstractmethod
    def pread(self, offset: int, length: int) -> bytes:
        """Read up to ``length`` bytes at ``offset`` (short reads at EOF)."""

    @abstractmethod
    def size(self) -> int:
        """Current size of the underlying byte sequence."""

    @abstractmethod
    def close(self) -> None:
        """Release the backend's resources; must be idempotent."""

    @property
    @abstractmethod
    def closed(self) -> bool:
        """Whether :meth:`close` has completed."""

    def view(self, offset: int, length: int):
        """A buffer over ``[offset, offset+length)``; zero-copy where possible.

        The default implementation falls back to :meth:`pread` (a copy).
        Callers that receive a ``memoryview`` must ``release()`` it before the
        store can be closed.
        """
        return self.pread(offset, length)

    def __enter__(self) -> "ByteStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _record_pread(started: float, n: int) -> None:
    recorder = _obs.get_recorder()
    if recorder.enabled:
        recorder.observe("store.io.pread_seconds", time.perf_counter() - started)
        recorder.count("store.io.pread_calls")
        recorder.count("store.io.pread_bytes", n)


def _record_view(n: int) -> None:
    recorder = _obs.get_recorder()
    if recorder.enabled:
        recorder.count("store.io.view_calls")
        recorder.count("store.io.view_bytes", n)


class FileByteStore(ByteStore):
    """Seek/read over a regular file handle, one lock per store.

    Exactly one of ``path`` / ``fh`` must be given.  A store opened from a
    path owns its handle and closes it; a store wrapping an existing ``fh``
    borrows it — ``close()`` releases the reference but leaves the handle
    open for its real owner (the archive writer does this with its append
    handle).  ``lock`` is public: the writer serialises its payload writes
    against the fetcher's reads through it.
    """

    name = "file"

    def __init__(self, path: Optional[PathLike] = None, fh: Optional[BinaryIO] = None):
        if (path is None) == (fh is None):
            raise ValueError("FileByteStore needs exactly one of path or fh")
        if path is not None:
            self._fh: Optional[BinaryIO] = open(Path(path), "rb")
            self._owns_fh = True
        else:
            self._fh = fh
            self._owns_fh = False
        self.lock = threading.Lock()

    def pread(self, offset: int, length: int) -> bytes:
        fh = self._fh
        if fh is None:
            raise ValueError("byte store is closed")
        started = time.perf_counter()
        with self.lock:
            fh.seek(offset)
            data = fh.read(length)
        _record_pread(started, len(data))
        return data

    def size(self) -> int:
        fh = self._fh
        if fh is None:
            raise ValueError("byte store is closed")
        with self.lock:
            fh.seek(0, os.SEEK_END)
            return fh.tell()

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None and self._owns_fh:
            fh.close()

    @property
    def closed(self) -> bool:
        return self._fh is None


class MmapByteStore(ByteStore):
    """Read-only memory map: lock-free ``pread``, zero-copy ``view``.

    The file descriptor is closed as soon as the mapping exists (the mapping
    keeps the pages alive).  ``size()`` reports the mapped extent — bytes an
    appender adds after the map was created are invisible, which is exactly
    the generation-consistent snapshot a reader wants.  ``close()`` unmaps
    deterministically; it raises ``BufferError`` if zero-copy views handed
    out by :meth:`view` are still alive, surfacing the leak at the caller.
    """

    name = "mmap"

    def __init__(self, path: PathLike):
        self.path = Path(path)
        fd = os.open(self.path, os.O_RDONLY)
        try:
            length = os.fstat(fd).st_size
            if length == 0:
                raise ValueError(f"cannot mmap empty file {self.path}")
            self._mm = mmap.mmap(fd, 0, access=mmap.ACCESS_READ)
        finally:
            os.close(fd)
        self._view = memoryview(self._mm)
        self._closed = False

    def pread(self, offset: int, length: int) -> bytes:
        if self._closed:
            raise ValueError("byte store is closed")
        started = time.perf_counter()
        data = self._mm[offset : offset + length]
        _record_pread(started, len(data))
        return data

    def view(self, offset: int, length: int) -> memoryview:
        if self._closed:
            raise ValueError("byte store is closed")
        _record_view(min(length, max(0, len(self._mm) - offset)))
        return self._view[offset : offset + length]

    def size(self) -> int:
        if self._closed:
            raise ValueError("byte store is closed")
        return len(self._mm)

    def close(self) -> None:
        if self._closed:
            return
        # release our parent view first; mmap.close() then raises BufferError
        # if a caller still holds an exported sub-view (a leak we want loud)
        self._view.release()
        self._mm.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


class MemoryByteStore(ByteStore):
    """Bytes-backed store for tests and whole-archive downloads."""

    name = "memory"

    def __init__(self, data: bytes):
        self._data = bytes(data)
        self._view: Optional[memoryview] = memoryview(self._data)

    def pread(self, offset: int, length: int) -> bytes:
        if self._view is None:
            raise ValueError("byte store is closed")
        started = time.perf_counter()
        data = self._data[offset : offset + length]
        _record_pread(started, len(data))
        return data

    def view(self, offset: int, length: int) -> memoryview:
        if self._view is None:
            raise ValueError("byte store is closed")
        _record_view(min(length, max(0, len(self._data) - offset)))
        return self._view[offset : offset + length]

    def size(self) -> int:
        if self._view is None:
            raise ValueError("byte store is closed")
        return len(self._data)

    def close(self) -> None:
        view, self._view = self._view, None
        if view is not None:
            view.release()

    @property
    def closed(self) -> bool:
        return self._view is None


def open_bytestore(path: PathLike, backend: str = "auto") -> ByteStore:
    """Open ``path`` for reading with the named backend.

    ``"auto"`` tries the mmap backend and falls back to the file backend when
    mapping fails (empty files, filesystems without mmap support).  Unknown
    names raise ``ValueError`` so a CLI typo fails loudly.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown io backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    if backend == "mmap":
        return MmapByteStore(path)
    if backend == "file":
        return FileByteStore(path=path)
    try:
        return MmapByteStore(path)
    except (OSError, ValueError):
        return FileByteStore(path=path)
