"""Chunked on-disk archive store for compressed scientific fields.

The ``XFA1`` archive format holds many named fields in one file, each split
into independently compressed chunks with a JSON manifest (per-field dtype,
shape, chunk grid, codec, error bound; per-chunk offsets and CRCs) enabling
O(1) random access — :meth:`~repro.store.reader.ArchiveReader.read_region`
decompresses only the chunks a request intersects.

Archives are also *appendable time series*: ``ArchiveWriter(mode="a")``
reopens an archive and adds fieldsets as timesteps (manifest-v2 timestep
index, one durable flush per step), the ``temporal-delta`` codec stores a
step as an error-bounded residual against its decoded predecessor (anchors
every K steps bound random access in time), and
:meth:`~repro.store.reader.ArchiveReader.read_timestep` /
``read_time_range`` decode along the time axis.

- :mod:`repro.store.codecs` — the codec registry: the SZ baseline, the
  ZFP-like transform coder, the paper's cross-field compressor, an exact
  lossless codec and the temporal-delta wrapper behind one
  :class:`~repro.store.codecs.Codec` interface; new backends plug in via
  :func:`~repro.store.codecs.register_codec`.
- :mod:`repro.store.temporal` — the :class:`TemporalSpec` time-coding policy.
- :mod:`repro.store.bytestore` — the :class:`ByteStore` I/O abstraction
  (file / mmap / in-memory backends) both directions read through.
- :mod:`repro.store.shared_cache` — the process-wide
  :class:`SharedChunkCache` with single-flight decode deduplication.
- :mod:`repro.store.writer` — streaming-append :class:`ArchiveWriter` with
  parallel per-chunk compression, append/reopen mode and
  :meth:`~repro.store.writer.ArchiveWriter.add_timestep`.
- :mod:`repro.store.reader` — random-access :class:`ArchiveReader` with
  CRC re-verification, an LRU decompressed-chunk cache, and crash-recovery
  opens (``recover=True``).
- :mod:`repro.store.cli` — the ``repro`` console script
  (``pack`` / ``unpack`` / ``ls`` / ``extract`` / ``verify`` plus the
  time-stepped ``append`` / ``steps`` and the pipeline-driven
  ``run`` / ``compress`` / ``decompress``).

The byte-level format is specified in ``docs/xfa1-format.md`` (append
semantics and the manifest log included); the streaming workflow is
documented in ``docs/timeseries.md``; the high-level, config-driven API over
this store lives in :mod:`repro.pipeline`.
"""

from repro.store.bytestore import (
    ByteStore,
    FileByteStore,
    MemoryByteStore,
    MmapByteStore,
    open_bytestore,
)
from repro.store.cache import LRUChunkCache, freeze_chunk
from repro.store.codecs import (
    Codec,
    CrossFieldChunkCodec,
    LosslessChunkCodec,
    SZChunkCodec,
    TemporalDeltaCodec,
    ZFPChunkCodec,
    available_codecs,
    get_codec,
    register_codec,
)
from repro.store.manifest import (
    ArchiveCorruptionError,
    ArchiveError,
    ArchiveManifest,
    ChunkEntry,
    FieldEntry,
    TimestepEntry,
)
from repro.store.reader import ArchiveReader
from repro.store.shared_cache import SharedChunkCache, process_chunk_cache
from repro.store.temporal import TemporalSpec
from repro.store.writer import ArchiveWriter, stored_field_name

__all__ = [
    "ArchiveWriter",
    "ArchiveReader",
    "ByteStore",
    "FileByteStore",
    "MmapByteStore",
    "MemoryByteStore",
    "open_bytestore",
    "SharedChunkCache",
    "process_chunk_cache",
    "freeze_chunk",
    "ArchiveManifest",
    "ChunkEntry",
    "FieldEntry",
    "TimestepEntry",
    "TemporalSpec",
    "stored_field_name",
    "ArchiveError",
    "ArchiveCorruptionError",
    "LRUChunkCache",
    "Codec",
    "SZChunkCodec",
    "ZFPChunkCodec",
    "CrossFieldChunkCodec",
    "LosslessChunkCodec",
    "TemporalDeltaCodec",
    "register_codec",
    "get_codec",
    "available_codecs",
]
