"""Chunked on-disk archive store for compressed scientific fields.

The ``XFA1`` archive format holds many named fields in one file, each split
into independently compressed chunks with a JSON manifest (per-field dtype,
shape, chunk grid, codec, error bound; per-chunk offsets and CRCs) enabling
O(1) random access — :meth:`~repro.store.reader.ArchiveReader.read_region`
decompresses only the chunks a request intersects.

- :mod:`repro.store.codecs` — the codec registry: the SZ baseline, the
  ZFP-like transform coder, the paper's cross-field compressor and an exact
  lossless codec behind one :class:`~repro.store.codecs.Codec` interface;
  new backends plug in via :func:`~repro.store.codecs.register_codec`.
- :mod:`repro.store.writer` — streaming-append :class:`ArchiveWriter` with
  parallel per-chunk compression.
- :mod:`repro.store.reader` — random-access :class:`ArchiveReader` with
  CRC re-verification and an LRU decompressed-chunk cache.
- :mod:`repro.store.cli` — the ``repro`` console script
  (``pack`` / ``unpack`` / ``ls`` / ``extract`` / ``verify`` plus the
  pipeline-driven ``run`` / ``compress`` / ``decompress``).

The byte-level format is specified in ``docs/xfa1-format.md``; the high-level,
config-driven API over this store lives in :mod:`repro.pipeline`.
"""

from repro.store.cache import LRUChunkCache
from repro.store.codecs import (
    Codec,
    CrossFieldChunkCodec,
    LosslessChunkCodec,
    SZChunkCodec,
    ZFPChunkCodec,
    available_codecs,
    get_codec,
    register_codec,
)
from repro.store.manifest import (
    ArchiveCorruptionError,
    ArchiveError,
    ArchiveManifest,
    ChunkEntry,
    FieldEntry,
)
from repro.store.reader import ArchiveReader
from repro.store.writer import ArchiveWriter

__all__ = [
    "ArchiveWriter",
    "ArchiveReader",
    "ArchiveManifest",
    "ChunkEntry",
    "FieldEntry",
    "ArchiveError",
    "ArchiveCorruptionError",
    "LRUChunkCache",
    "Codec",
    "SZChunkCodec",
    "ZFPChunkCodec",
    "CrossFieldChunkCodec",
    "LosslessChunkCodec",
    "register_codec",
    "get_codec",
    "available_codecs",
]
