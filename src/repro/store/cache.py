"""Byte-budgeted LRU cache for decompressed chunks.

Region reads hit the same chunks over and over (a user panning across a field,
a dashboard refreshing a zoom window), and decompression dominates read
latency.  Caching decompressed chunks keyed by ``(field, chunk_index)`` turns
repeated reads into memcpy-speed operations.  The cache is bounded by total
ndarray bytes (and optionally entry count) and evicts least-recently-used
chunks first.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, List, Optional

import numpy as np

__all__ = ["LRUChunkCache", "freeze_chunk"]

#: Default cache budget: 128 MiB of decompressed chunk data.
DEFAULT_CACHE_BYTES = 128 * 1024 * 1024


def freeze_chunk(chunk: np.ndarray) -> np.ndarray:
    """Return a read-only array safe to hand out from a cache.

    Cached chunks are shared across callers (and, through the shared cache,
    across readers), so a caller mutating a returned chunk must never corrupt
    later hits — and the cache must never keep a view into a buffer it does
    not own (an mmap page, a codec scratch array).  Arrays that borrow their
    memory are copied; the result is then marked non-writeable.  Arrays that
    already own their data are frozen in place without a copy, which is the
    common case: codec decodes end in a fresh ``.copy()``.
    """
    arr = np.asarray(chunk)
    if arr.base is not None or not arr.flags.owndata:
        arr = arr.copy()
    if arr.flags.writeable:
        arr.setflags(write=False)
    return arr


class LRUChunkCache:
    """LRU mapping of hashable keys to ndarrays with a byte budget.

    Parameters
    ----------
    max_bytes:
        Total decompressed bytes the cache may hold.  ``0`` disables caching
        entirely (every :meth:`get` misses, :meth:`put` is a no-op).
    max_entries:
        Optional additional cap on the number of cached chunks.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES, max_entries: Optional[int] = None) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive when given")
        self.max_bytes = int(max_bytes)
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._nbytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def nbytes(self) -> int:
        """Total bytes of all cached chunks."""
        return self._nbytes

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Return the cached chunk (marking it most recently used) or ``None``."""
        if key not in self._entries:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return self._entries[key]

    def put(self, key: Hashable, chunk: np.ndarray) -> None:
        """Insert a chunk, evicting LRU entries until the budget is respected.

        The stored array is frozen via :func:`freeze_chunk`: read-only, and
        copied first if it did not own its memory.
        """
        if self.max_bytes == 0:
            return
        chunk = freeze_chunk(chunk)
        if key in self._entries:
            self._nbytes -= int(self._entries.pop(key).nbytes)
        nbytes = int(chunk.nbytes)
        if nbytes > self.max_bytes:
            # a chunk larger than the whole budget is never cached (any stale
            # entry under this key was already dropped above)
            return
        self._entries[key] = chunk
        self._nbytes += nbytes
        while self._nbytes > self.max_bytes or (
            self.max_entries is not None and len(self._entries) > self.max_entries
        ):
            _, evicted = self._entries.popitem(last=False)
            self._nbytes -= int(evicted.nbytes)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every cached chunk (statistics are kept)."""
        self._entries.clear()
        self._nbytes = 0

    def keys(self) -> List[Hashable]:
        """A snapshot list of the current keys, LRU first."""
        return list(self._entries)

    def discard(self, key: Hashable) -> None:
        """Drop ``key`` if present (no-op otherwise; not counted as eviction)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._nbytes -= int(entry.nbytes)

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus current occupancy."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "nbytes": self._nbytes,
        }
