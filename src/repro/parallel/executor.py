"""Thread-pool block-parallel compression executor.

Each block is an independent compression problem (dual quantization removes the
cross-point dependency inside the compressor, and blocks share no state), so
blocks can be handed to a pool of workers.  The error bound is resolved *once*
on the full array and applied as an absolute bound to every block, so the
block-parallel result satisfies exactly the same per-point guarantee as the
single-shot compressor.

Threads (rather than processes) are the default because the heavy lifting —
NumPy ufuncs and zlib — releases the GIL; a process pool can be requested for
workloads dominated by pure-Python stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.slicing import reassemble_blocks
from repro.encoding.container import CompressedBlob
from repro.parallel.blocks import BlockSpec, plan_blocks
from repro.parallel.engine import ChunkScheduler
from repro.sz.errors import ErrorBound
from repro.sz.pipeline import CompressionResult, SZCompressor
from repro.utils.validation import ensure_array, ensure_in

__all__ = ["BlockCompressionResult", "BlockParallelCompressor", "parallel_map", "parallel_imap"]

#: Kinds the block compressor accepts.  The shared engine additionally offers
#: ``"process"``, but the per-block closures here capture the full input array
#: and are deliberately not picklable, so it is not exposed at this level.
EXECUTOR_KINDS = ("thread", "serial")


def parallel_map(func, items, executor_kind: str = "thread", max_workers: Optional[int] = None) -> List:
    """Apply ``func`` to every item, optionally with a thread pool.

    A thin wrapper over :class:`~repro.parallel.engine.ChunkScheduler`, kept
    for callers that want a one-call functional interface: ``"thread"`` uses a
    pool (NumPy and zlib release the GIL), ``"serial"`` is the in-process
    reference loop.  Results preserve item order.
    """
    return list(parallel_imap(func, items, executor_kind, max_workers))


def parallel_imap(func, items, executor_kind: str = "thread", max_workers: Optional[int] = None):
    """Lazy variant of :func:`parallel_map`: yield results in item order.

    Submissions are windowed (see :meth:`ChunkScheduler.imap`): a caller that
    processes each result as it arrives holds at most one window of results
    in memory even when the workers outpace it — never the whole output list.
    Validation is eager; worker exceptions propagate unwrapped.
    """
    # keep this module's narrower kind set (and its error message) for
    # backwards compatibility before delegating to the shared engine
    ensure_in(executor_kind, EXECUTOR_KINDS, "executor_kind")
    return ChunkScheduler(jobs=max_workers, executor_kind=executor_kind).imap(func, items)


@dataclass
class BlockCompressionResult:
    """Aggregate result of a block-parallel compression."""

    payload: bytes
    original_nbytes: int
    compressed_nbytes: int
    abs_error_bound: float
    n_blocks: int
    element_count: int = 0
    block_results: List[CompressionResult] = field(default_factory=list)

    @property
    def ratio(self) -> float:
        """Compression ratio of the aggregated payload."""
        if self.compressed_nbytes == 0:
            return float("inf")
        return self.original_nbytes / self.compressed_nbytes

    @property
    def bit_rate(self) -> float:
        """Average compressed bits per value.

        Uses the stored element count; results built before the count existed
        (``element_count == 0``) fall back to assuming 4-byte elements.
        """
        element_count = self.element_count or (self.original_nbytes // 4)
        if element_count == 0:
            return 0.0
        return 8.0 * self.compressed_nbytes / element_count


class BlockParallelCompressor:
    """Compress a field block-by-block with a worker pool.

    Parameters
    ----------
    compressor:
        The per-block compressor; defaults to the baseline
        :class:`~repro.sz.pipeline.SZCompressor` with the Lorenzo predictor.
    block_shape:
        Block tile size; defaults to 64 along every axis.
    max_workers:
        Worker count for the pool (``None`` lets the executor decide).
    executor_kind:
        ``"thread"`` (default) or ``"serial"`` (in-process loop, useful for
        debugging and as the reference in speedup measurements).
    """

    format_name = "sz-block-parallel"

    def __init__(
        self,
        compressor: Optional[SZCompressor] = None,
        block_shape: Optional[Sequence[int]] = None,
        max_workers: Optional[int] = None,
        executor_kind: str = "thread",
    ) -> None:
        ensure_in(executor_kind, EXECUTOR_KINDS, "executor_kind")
        self.compressor = compressor if compressor is not None else SZCompressor()
        self.block_shape = block_shape
        self.max_workers = max_workers
        self.executor_kind = executor_kind

    # ------------------------------------------------------------------ #
    def _resolve_block_shape(self, shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if self.block_shape is None:
            return tuple(min(64, s) for s in shape)
        block_shape = tuple(int(b) for b in self.block_shape)
        if len(block_shape) != len(shape):
            raise ValueError("block_shape rank must match data rank")
        return block_shape

    def _map(self, func, items):
        # the engine is the orchestration body; this class only plans blocks
        # and aggregates results
        return ChunkScheduler(jobs=self.max_workers, executor_kind=self.executor_kind).map(func, items)

    # ------------------------------------------------------------------ #
    def compress(self, data: np.ndarray, field_name: str = "") -> BlockCompressionResult:
        """Compress ``data`` block-parallel and return the aggregated result."""
        data = ensure_array(data, "data")
        block_shape = self._resolve_block_shape(data.shape)
        blocks = plan_blocks(data.shape, block_shape)

        # Resolve the error bound once over the whole array so every block uses
        # the identical absolute bound (a per-block relative bound would change
        # the semantics relative to the single-shot compressor).
        abs_eb = self.compressor.error_bound.resolve(data)
        block_compressor = SZCompressor(
            error_bound=ErrorBound.absolute(abs_eb),
            predictor=self.compressor.predictor,
            entropy=self.compressor.entropy,
            backend=self.compressor.backend,
            quant_radius=self.compressor.quant_radius,
        )

        def compress_block(spec: BlockSpec) -> CompressionResult:
            return block_compressor.compress(spec.extract(data), field_name=f"{field_name}#{spec.index}")

        block_results = self._map(compress_block, blocks)

        blob = CompressedBlob(
            metadata={
                "format": self.format_name,
                "field_name": field_name,
                "shape": list(data.shape),
                "dtype": str(data.dtype),
                "abs_error_bound": abs_eb,
                "block_shape": list(block_shape),
                "blocks": [spec.to_dict() for spec in blocks],
            }
        )
        for spec, result in zip(blocks, block_results):
            blob.add_section(f"block.{spec.index}", result.payload)
        payload = blob.to_bytes()
        return BlockCompressionResult(
            payload=payload,
            original_nbytes=int(data.nbytes),
            compressed_nbytes=len(payload),
            abs_error_bound=abs_eb,
            n_blocks=len(blocks),
            element_count=int(data.size),
            block_results=block_results,
        )

    def decompress(self, payload: bytes) -> np.ndarray:
        """Decompress a payload produced by :meth:`compress` (also block-parallel)."""
        blob = CompressedBlob.from_bytes(payload)
        metadata = blob.metadata
        if metadata.get("format") != self.format_name:
            raise ValueError(
                f"payload format {metadata.get('format')!r} is not {self.format_name!r}"
            )
        shape = tuple(metadata["shape"])
        dtype = np.dtype(metadata["dtype"])
        block_shape = tuple(metadata["block_shape"])
        specs = [BlockSpec.from_dict(entry) for entry in metadata["blocks"]]
        decoder = SZCompressor(
            error_bound=ErrorBound.absolute(float(metadata["abs_error_bound"])),
            predictor=self.compressor.predictor,
            entropy=self.compressor.entropy,
            backend=self.compressor.backend,
            quant_radius=self.compressor.quant_radius,
        )

        def decompress_block(spec: BlockSpec) -> np.ndarray:
            return decoder.decompress(blob.get_section(f"block.{spec.index}"))

        block_arrays = self._map(decompress_block, specs)
        out = np.empty(shape, dtype=dtype)
        for spec, block in zip(specs, block_arrays):
            out[spec.slices] = block
        return out
