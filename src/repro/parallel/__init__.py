"""Block-parallel compression and the shared chunk execution engine.

Dual quantization removes the read-after-write dependency from the compression
path (paper Section III-D1), which is what makes it possible to compress
independent blocks of a field concurrently.  This package provides the block
decomposition (:mod:`repro.parallel.blocks`), the shared chunk execution
engine (:mod:`repro.parallel.engine` — thread/process/serial backends,
windowed ordered streaming, unordered collection, per-task error context)
used by both directions of the stack (archive writes *and* reads), and the
block-parallel compressor built on top of it.
"""

from repro.parallel.blocks import BlockSpec, plan_blocks
from repro.parallel.engine import (
    ChunkScheduler,
    ChunkTaskError,
    SCHEDULER_KINDS,
    default_jobs,
)
from repro.parallel.executor import (
    BlockParallelCompressor,
    BlockCompressionResult,
    parallel_imap,
    parallel_map,
)

__all__ = [
    "BlockSpec",
    "plan_blocks",
    "ChunkScheduler",
    "ChunkTaskError",
    "SCHEDULER_KINDS",
    "default_jobs",
    "BlockParallelCompressor",
    "BlockCompressionResult",
    "parallel_map",
    "parallel_imap",
]
