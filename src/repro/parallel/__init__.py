"""Block-parallel compression.

Dual quantization removes the read-after-write dependency from the compression
path (paper Section III-D1), which is what makes it possible to compress
independent blocks of a field concurrently.  This package provides the block
decomposition and a thread/process-pool executor that compresses and
decompresses blocks in parallel while preserving the per-point error bound.
"""

from repro.parallel.blocks import BlockSpec, plan_blocks
from repro.parallel.executor import (
    BlockParallelCompressor,
    BlockCompressionResult,
    parallel_imap,
    parallel_map,
)

__all__ = [
    "BlockSpec",
    "plan_blocks",
    "BlockParallelCompressor",
    "BlockCompressionResult",
    "parallel_map",
    "parallel_imap",
]
