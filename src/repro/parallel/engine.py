"""Shared chunk execution engine: one scheduler for both directions of the stack.

Every layer of this system ultimately reduces to the same shape of work —
*plan* a list of independent chunk tasks, *submit* them to a pool, *collect*
the results — yet the write path (archive packing), the read path (region
reads, full-field decode, verification) and the in-memory block compressor
each used to carry their own copy of that orchestration.  :class:`ChunkScheduler`
is the single implementation they all share now:

- **Backends**: ``"thread"`` (the default — NumPy ufuncs and zlib release the
  GIL, so chunk codecs scale across cores in one process), ``"process"`` (for
  pure-Python-dominated workloads; tasks and results must be picklable) and
  ``"serial"`` (the in-process reference loop, used for debugging and as the
  baseline in speedup measurements).
- **Windowed submission**: ordered streaming submits at most
  ``window_factor * jobs`` tasks ahead of the consumer, so a caller that
  processes results as they arrive (the archive writer appending payloads to
  disk) holds one window of results in memory, never the whole output.
- **Ordered and unordered collection**: :meth:`imap` preserves task order
  (required when results are streamed to an append-only file);
  :meth:`imap_unordered` yields ``(index, result)`` pairs as tasks finish
  (the read path assembles chunks into a preallocated array, so arrival
  order is irrelevant and the fastest chunk never waits for the slowest).
- **Per-task error context**: pass ``context=`` to have worker failures
  re-raised as :class:`ChunkTaskError` naming the failing task (e.g.
  ``"field 'T' chunk 3"``) with the original exception chained and preserved
  on ``.original``.

``jobs`` follows the convention of build tools: ``None`` picks a default
sized to the machine, ``1`` *guarantees* serial in-process execution (no pool
is created at all), ``n`` uses ``n`` workers.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
import time
from collections import deque
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from repro.obs import recorder as _obs
from repro.utils.validation import ensure_in

__all__ = ["SCHEDULER_KINDS", "ChunkScheduler", "ChunkTaskError", "default_jobs"]

#: Executor backends understood by :class:`ChunkScheduler`.
SCHEDULER_KINDS = ("thread", "process", "serial")

#: Description callback: maps ``(task_index, item)`` to a human-readable label.
ContextFn = Callable[[int, Any], str]


def default_jobs() -> int:
    """Default worker count (mirrors :class:`~concurrent.futures.ThreadPoolExecutor`)."""
    return min(32, (os.cpu_count() or 1) + 4)


class ChunkTaskError(RuntimeError):
    """One chunk task failed; the message says *which* chunk and *why*.

    Raised by :class:`ChunkScheduler` methods called with a ``context``
    callback.  ``context`` is the human-readable task label, ``original`` is
    the exception the worker raised (also chained as ``__cause__``).
    """

    def __init__(self, context: str, original: BaseException) -> None:
        super().__init__(f"{context}: {original}")
        self.context = context
        self.original = original


class _ShippedResult:
    """A task result travelling with the worker's telemetry delta.

    Process workers cannot record into the parent's recorder, so the task
    wrapper snapshots a worker-local recorder after each task and ships the
    delta alongside the result; the parent merges it at collection time.
    """

    __slots__ = ("result", "telemetry")

    def __init__(self, result, telemetry) -> None:
        self.result = result
        self.telemetry = telemetry


class _TelemetryTask:
    """Wraps a task callable with queue-wait/duration metrics (picklable).

    Called as ``task(item, submitted)`` where ``submitted`` is the submitting
    thread's ``perf_counter()``; on Linux ``perf_counter`` is the system-wide
    ``CLOCK_MONOTONIC``, so the queue-wait measurement also holds across the
    process boundary.  With ``ship=True`` (process backend) the task runs
    against a fresh worker-local recorder — never the recorder state a forked
    child inherited, which the parent already owns — and returns a
    :class:`_ShippedResult` carrying the per-task delta.
    """

    __slots__ = ("func", "ship")

    def __init__(self, func: Callable, ship: bool) -> None:
        self.func = func
        self.ship = ship

    def __call__(self, item, submitted: float):
        if self.ship:
            local = _obs.Recorder()
            previous = _obs.set_recorder(local)
            try:
                result = self._run(local, item, submitted)
            finally:
                _obs.set_recorder(previous)
            return _ShippedResult(result, local.snapshot())
        return self._run(_obs.get_recorder(), item, submitted)

    def _run(self, recorder, item, submitted: float):
        start = time.perf_counter()
        recorder.observe("scheduler.queue_wait_seconds", max(0.0, start - submitted))
        result = self.func(item)
        recorder.observe("scheduler.task_seconds", time.perf_counter() - start)
        recorder.count("scheduler.tasks")
        return result


class ChunkScheduler:
    """Plan → submit → collect orchestration for independent chunk tasks.

    Parameters
    ----------
    jobs:
        Worker count.  ``None`` uses :func:`default_jobs`; ``1`` executes
        serially in the calling thread (no pool); values below 1 are rejected.
    executor_kind:
        One of :data:`SCHEDULER_KINDS`.  ``"process"`` requires picklable
        callables, items and results.
    window_factor:
        In-flight tasks per worker for the ordered streaming path; the
        submission window is ``window_factor * jobs``.
    reuse_pool:
        By default each call creates and tears down its own pool, which keeps
        the scheduler stateless.  ``reuse_pool=True`` lazily creates one pool
        on first use and keeps it for the scheduler's lifetime — right for
        hot paths issuing many small batches (an archive reader serving
        region reads), where per-call pool construction would rival the work
        itself.  Call :meth:`close` to release the pool (safe to call more
        than once; the pool is recreated on next use).

    Either way, one instance can be shared by concurrent callers — e.g. many
    threads issuing :meth:`imap_unordered` reads against one archive reader.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        executor_kind: str = "thread",
        window_factor: int = 2,
        reuse_pool: bool = False,
    ) -> None:
        ensure_in(executor_kind, SCHEDULER_KINDS, "executor_kind")
        if jobs is not None:
            if isinstance(jobs, bool) or not isinstance(jobs, int):
                raise ValueError(f"jobs must be an integer or None, got {jobs!r}")
            if jobs < 1:
                raise ValueError(f"jobs must be >= 1, got {jobs}")
        if window_factor < 1:
            raise ValueError(f"window_factor must be >= 1, got {window_factor}")
        self.jobs = jobs
        self.executor_kind = executor_kind
        self.window_factor = int(window_factor)
        self.reuse_pool = bool(reuse_pool)
        self._pool: Optional[concurrent.futures.Executor] = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def effective_jobs(self) -> int:
        """The worker count a parallel backend would actually use."""
        return self.jobs if self.jobs is not None else default_jobs()

    def is_serial(self, n_tasks: Optional[int] = None) -> bool:
        """True when execution falls back to the in-process serial loop."""
        if self.executor_kind == "serial" or self.effective_jobs == 1:
            return True
        return n_tasks is not None and n_tasks <= 1

    # ------------------------------------------------------------------ #
    # collection
    # ------------------------------------------------------------------ #
    def map(self, func, items: Iterable, context: Optional[ContextFn] = None) -> List:
        """Apply ``func`` to every item and return results in item order."""
        return list(self.imap(func, items, context=context))

    def imap(self, func, items: Iterable, context: Optional[ContextFn] = None) -> Iterator:
        """Yield ``func(item)`` results in item order, with windowed submission.

        Validation and the item snapshot happen eagerly — the generator body
        only runs on first iteration, which would otherwise defer (or swallow)
        configuration errors.
        """
        items = list(items)
        serial = self.is_serial(len(items))
        task = self._instrument(func, serial)
        if serial:
            return self._serial_iter(func, items, context, task)
        return self._imap_ordered(func, items, context, task)

    def imap_unordered(
        self, func, items: Iterable, context: Optional[ContextFn] = None
    ) -> Iterator[Tuple[int, Any]]:
        """Yield ``(index, func(item))`` pairs in completion order.

        ``index`` is the item's position in the input, so callers can place
        each result without waiting for earlier tasks — slow chunks never
        block fast ones.  The full input is submitted up front (collection is
        unordered precisely because the caller wants everything), so prefer
        :meth:`imap` when results must stream to an ordered sink.
        """
        items = list(items)
        serial = self.is_serial(len(items))
        task = self._instrument(func, serial)
        if serial:
            return (
                (i, result)
                for i, result in enumerate(self._serial_iter(func, items, context, task))
            )
        return self._imap_unordered(func, items, context, task)

    # ------------------------------------------------------------------ #
    # backends
    # ------------------------------------------------------------------ #
    def _make_pool(self) -> concurrent.futures.Executor:
        if self.executor_kind == "process":
            return concurrent.futures.ProcessPoolExecutor(max_workers=self.effective_jobs)
        return concurrent.futures.ThreadPoolExecutor(max_workers=self.effective_jobs)

    def _acquire_pool(self) -> Tuple[concurrent.futures.Executor, bool]:
        """The pool for one call and whether the call owns (must tear down) it."""
        if not self.reuse_pool:
            return self._make_pool(), True
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool, False

    def close(self) -> None:
        """Release a reused pool (no-op otherwise; the pool returns on next use)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def _instrument(self, func: Callable, serial: bool) -> Optional[_TelemetryTask]:
        """The telemetry task wrapper for one call, or ``None`` when disabled.

        Serial execution records directly into the global recorder (delta
        shipping would only copy state within one process); a process pool
        ships per-task deltas instead.  With telemetry disabled the raw
        ``func`` runs unwrapped — the instrumented path costs nothing.
        """
        if not _obs.enabled():
            return None
        return _TelemetryTask(func, ship=not serial and self.executor_kind == "process")

    @staticmethod
    def _unwrap(result):
        """Merge a shipped worker delta into the global recorder, if present."""
        if isinstance(result, _ShippedResult):
            _obs.get_recorder().merge_snapshot(result.telemetry)
            return result.result
        return result

    @staticmethod
    def _wrap_error(
        exc: BaseException, index: int, item, context: Optional[ContextFn]
    ) -> BaseException:
        """Attach task context to a worker failure (no-op without ``context``)."""
        if context is None or isinstance(exc, ChunkTaskError):
            return exc
        return ChunkTaskError(context(index, item), exc)

    def _serial_iter(self, func, items, context, task=None) -> Iterator:
        for index, item in enumerate(items):
            try:
                if task is not None:
                    yield self._unwrap(task(item, time.perf_counter()))
                else:
                    yield func(item)
            except Exception as exc:
                wrapped = self._wrap_error(exc, index, item, context)
                if wrapped is exc:
                    raise
                raise wrapped from exc

    def _imap_ordered(self, func, items, context, task=None) -> Iterator:
        if task is None:
            submit = lambda item: pool.submit(func, item)  # noqa: E731
        else:
            submit = lambda item: pool.submit(task, item, time.perf_counter())  # noqa: E731
        window = self.window_factor * self.effective_jobs
        pool, owned = self._acquire_pool()
        try:
            pending = deque(
                (i, items[i], submit(items[i])) for i in range(min(window, len(items)))
            )
            try:
                for i in range(window, len(items)):
                    yield self._collect(pending.popleft(), context)
                    pending.append((i, items[i], submit(items[i])))
                while pending:
                    yield self._collect(pending.popleft(), context)
            except BaseException:
                # a failed task (or an abandoned consumer) must not stall on
                # the rest of the submission window: drop queued work, keep
                # only the futures already running
                if owned:
                    pool.shutdown(wait=False, cancel_futures=True)
                else:
                    for _, _, future in pending:
                        future.cancel()
                raise
        finally:
            if owned:
                pool.shutdown(wait=True)

    def _imap_unordered(self, func, items, context, task=None) -> Iterator[Tuple[int, Any]]:
        pool, owned = self._acquire_pool()
        try:
            if task is None:
                futures = {
                    pool.submit(func, item): (i, item) for i, item in enumerate(items)
                }
            else:
                futures = {
                    pool.submit(task, item, time.perf_counter()): (i, item)
                    for i, item in enumerate(items)
                }
            pending = set(futures)
            try:
                while pending:
                    done, pending = concurrent.futures.wait(
                        pending, return_when=concurrent.futures.FIRST_COMPLETED
                    )
                    for future in done:
                        # pop: once yielded, the future (and its result) must
                        # be collectable — a consumer that assembles results
                        # into its own buffer should never hold two copies
                        index, item = futures.pop(future)
                        yield index, self._collect((index, item, future), context)
            except BaseException:
                if owned:
                    pool.shutdown(wait=False, cancel_futures=True)
                else:
                    for future in pending:
                        future.cancel()
                raise
        finally:
            if owned:
                pool.shutdown(wait=True)

    def _collect(self, task: Tuple[int, Any, concurrent.futures.Future], context):
        index, item, future = task
        try:
            return self._unwrap(future.result())
        except Exception as exc:
            wrapped = self._wrap_error(exc, index, item, context)
            if wrapped is exc:
                raise
            raise wrapped from exc
