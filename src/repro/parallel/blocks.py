"""Block decomposition planning for parallel compression."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.data.slicing import iter_blocks

__all__ = ["BlockSpec", "plan_blocks"]


@dataclass(frozen=True)
class BlockSpec:
    """One block of a larger grid: its index and the slices selecting it."""

    index: int
    slices: Tuple[slice, ...]

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the block."""
        return tuple(s.stop - s.start for s in self.slices)

    @property
    def size(self) -> int:
        """Number of points in the block."""
        return int(np.prod(self.shape))

    def extract(self, data: np.ndarray) -> np.ndarray:
        """Copy this block out of ``data``."""
        return np.ascontiguousarray(data[self.slices])

    def to_dict(self) -> dict:
        """JSON-serialisable representation (stored in the container metadata)."""
        return {
            "index": int(self.index),
            "start": [int(s.start) for s in self.slices],
            "stop": [int(s.stop) for s in self.slices],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BlockSpec":
        """Inverse of :meth:`to_dict`."""
        slices = tuple(slice(int(a), int(b)) for a, b in zip(payload["start"], payload["stop"]))
        return cls(index=int(payload["index"]), slices=slices)


def plan_blocks(shape: Sequence[int], block_shape: Sequence[int]) -> List[BlockSpec]:
    """Tile ``shape`` with blocks of at most ``block_shape`` and return the plan.

    The plan is deterministic (C order), so compressing the blocks in any order
    and reassembling them by index reproduces the original layout.
    """
    shape = tuple(int(s) for s in shape)
    block_shape = tuple(int(b) for b in block_shape)
    if len(block_shape) != len(shape):
        raise ValueError("block_shape rank must match data rank")
    specs = [
        BlockSpec(index=i, slices=slices) for i, slices in enumerate(iter_blocks(shape, block_shape))
    ]
    return specs
