"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file exists
so that ``python setup.py develop`` works on minimal offline environments where
the ``wheel`` package (needed by PEP 517 editable installs) is unavailable.
"""

from setuptools import setup

setup()
