"""Setuptools build configuration.

Kept as a plain ``setup.py`` (rather than ``pyproject.toml``) so that
``python setup.py develop`` / ``pip install -e .`` work on minimal offline
environments where the ``wheel`` package (needed by PEP 517 editable installs)
is unavailable.
"""

from pathlib import Path

from setuptools import find_packages, setup

_version_ns = {}
exec((Path(__file__).parent / "src" / "repro" / "_version.py").read_text(), _version_ns)

setup(
    name="repro",
    version=_version_ns["__version__"],
    description=(
        "Cross-field enhanced error-bounded lossy compression for scientific "
        "data, with a chunked random-access archive store"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        # optional ASGI frontend for `repro serve`; the stdlib
        # ThreadingHTTPServer frontend needs nothing beyond numpy
        "serve": ["fastapi", "uvicorn"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.store.cli:main",
        ]
    },
)
