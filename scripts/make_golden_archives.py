#!/usr/bin/env python
"""Regenerate the golden conformance archives under ``tests/data/golden/``.

The golden suite pins the ``XFA1`` wire format: tiny frozen archives are
committed to the repository together with their expected decoded output
(``*.expected.npz``) and their raw manifest bytes (``*.manifest.json``).
``tests/test_golden_archives.py`` decodes the *committed* bytes and compares
byte-exactly — so any drift in the container framing, the manifest schema,
a codec's payload layout, or an entropy coder's bit stream fails loudly
instead of silently shipping a format break.

Fixtures:

- ``v1-huffman.xfa``   — seed-era archive: legacy v1 Huffman payloads (header
  + bit stream, no checkpoints) *and* a v1 manifest (no timestep index), so
  the auto-upgrade read path stays pinned.
- ``hfv2.xfa``         — current default: checkpointed ``HFV2`` entropy
  payloads, manifest v2.
- ``mixed-codec.xfa``  — sz, zfp and lossless fields in one archive.
  (The cross-field codec is deliberately excluded: its CFNN decode runs
  through BLAS matmuls whose last-ulp rounding may differ across numpy
  builds, which would make byte-exact pinning flaky.)
- ``timeseries.xfa``   — appendable time-stepped archive: three steps written
  through the append path, temporal-delta coded with anchors every 2 steps.
- ``sz-hybrid.xfa``    — sz fields exercising every predictor (lorenzo,
  regression, interpolation), pinning the vectorised predict/decode fast
  paths byte-exactly: a change to the batched index-table decoders that
  alters any decoded byte fails here even if it slips past the parity suite.
- ``zfp-progressive.xfa`` — zfp fields in the grouped (significance-ordered)
  payload layout across 1D/2D/3D shapes, including block-ragged chunks,
  pinning the batched transform and the per-group sections byte-exactly.
  Note ``mixed-codec.xfa`` keeps its *legacy interleaved* zfp payload — it is
  the backward-compat fixture and must NOT be regenerated when the zfp
  default layout changes (use ``--only zfp-progressive``).

Run from the repository root after an *intentional* format change::

    PYTHONPATH=src python scripts/make_golden_archives.py [--only STEM]

``--only`` regenerates a single fixture, leaving the others byte-identical —
mandatory when adding a new fixture next to compat fixtures that pin an old
payload layout.  Inspect the diff and commit the updated fixtures alongside
the change.
"""

from __future__ import annotations

import argparse
import json
import struct
import sys
import zlib
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

GOLDEN_DIR = REPO_ROOT / "tests" / "data" / "golden"

#: Tiny but multi-chunk: 2x2 chunk grid per field.
SHAPE = (16, 32)
CHUNK = (8, 16)
SEED = 20240731


def _dataset():
    from repro.data.synthetic import make_dataset

    return make_dataset("cesm", shape=SHAPE, seed=SEED)


def _downgrade_manifest_to_v1(path: Path) -> None:
    """Rewrite an archive's manifest as schema v1 (no timestep index).

    Payload bytes are untouched; only the manifest JSON and the footer are
    replaced, exactly reproducing what a pre-timestep writer emitted.
    """
    from repro.store.manifest import FOOTER_SIZE, pack_footer, read_manifest

    with open(path, "r+b") as fh:
        manifest, offset, _ = read_manifest(fh)
        payload = json.loads(manifest.to_json().decode("utf-8"))
        payload["version"] = 1
        payload.pop("timesteps", None)
        manifest_bytes = json.dumps(payload, sort_keys=True).encode("utf-8")
        crc = zlib.crc32(manifest_bytes) & 0xFFFFFFFF
        fh.seek(offset)
        fh.write(manifest_bytes)
        fh.write(pack_footer(offset, len(manifest_bytes), crc))
        fh.truncate(offset + len(manifest_bytes) + FOOTER_SIZE)


def _force_huffman_v1():
    """Context manager: make HuffmanCodec emit legacy v1 payloads."""
    import contextlib

    from repro.encoding.huffman import HuffmanCodec

    @contextlib.contextmanager
    def patched():
        original = HuffmanCodec.encode

        def encode_v1(self, symbols, version=1):
            return original(self, symbols, version=1)

        HuffmanCodec.encode = encode_v1
        try:
            yield
        finally:
            HuffmanCodec.encode = original

    return patched()


def build_v1_huffman(path: Path) -> None:
    from repro.store import ArchiveWriter

    dataset = _dataset()
    with _force_huffman_v1():
        with ArchiveWriter(path, chunk_shape=CHUNK) as writer:
            writer.add_field("FLNT", dataset["FLNT"].data)
            writer.add_field("LWCF", dataset["LWCF"].data)
    _downgrade_manifest_to_v1(path)


def build_hfv2(path: Path) -> None:
    from repro.store import ArchiveWriter

    dataset = _dataset()
    with ArchiveWriter(path, chunk_shape=CHUNK) as writer:
        writer.add_field("FLNT", dataset["FLNT"].data)
        writer.add_field("LWCF", dataset["LWCF"].data)


def build_mixed_codec(path: Path) -> None:
    from repro.store import ArchiveWriter

    dataset = _dataset()
    with ArchiveWriter(path, chunk_shape=CHUNK) as writer:
        writer.add_field("FLNT", dataset["FLNT"].data)  # sz default
        writer.add_field("FLNTC", dataset["FLNTC"].data, codec="zfp")
        writer.add_field("CLDLOW", dataset["CLDLOW"].data, codec="lossless")


def build_sz_hybrid(path: Path) -> None:
    from repro.store import ArchiveWriter

    dataset = _dataset()
    with ArchiveWriter(path, chunk_shape=CHUNK) as writer:
        writer.add_field("FLNT", dataset["FLNT"].data, codec="sz", predictor="lorenzo")
        writer.add_field(
            "FLNTC", dataset["FLNTC"].data, codec="sz", predictor="regression"
        )
        writer.add_field(
            "LWCF", dataset["LWCF"].data, codec="sz", predictor="interpolation"
        )


def build_timeseries(path: Path) -> None:
    from repro.data.synthetic import make_timeseries
    from repro.store import ArchiveWriter, TemporalSpec

    series = make_timeseries(
        "cesm", shape=SHAPE, steps=3, seed=SEED, fields=("FLNT", "FLNTC"),
        drift=0.2, noise_level=0.005,
    )
    spec = TemporalSpec(mode="delta", anchor_every=2, base="sz")
    # steps 1..2 go through the real append path (reopen + flush), so the
    # fixture pins the manifest-log layout, not just the single-shot one
    with ArchiveWriter(path, chunk_shape=CHUNK) as writer:
        writer.add_timestep(series[0], time=0.0, temporal=spec)
    for t in (1, 2):
        with ArchiveWriter(path, mode="a") as writer:
            writer.add_timestep(series[t], time=t * 0.5, temporal=spec)


def build_zfp_progressive(path: Path) -> None:
    from repro.store import ArchiveWriter
    from repro.sz.errors import ErrorBound

    rng = np.random.default_rng(SEED)
    dataset = _dataset()
    # smooth synthetic fields so the significance groups carry a real
    # low-frequency/high-frequency split (pure noise would not)
    line = np.cumsum(rng.normal(size=64)).astype(np.float32)
    cube = np.cumsum(
        np.cumsum(rng.normal(size=(8, 12, 10)), axis=1), axis=2
    ).astype(np.float32)
    ragged = np.cumsum(rng.normal(size=(13, 19)), axis=1).astype(np.float32)
    bound = ErrorBound.absolute(1e-2)
    with ArchiveWriter(path, chunk_shape=CHUNK) as writer:
        writer.add_field("plane", dataset["FLNT"].data, codec="zfp", error_bound=bound)
        # chunk extents not divisible by the block size: every chunk has
        # block-ragged edges, exercising the per-block quantization step
        writer.add_field(
            "line", line, codec="zfp", error_bound=bound, chunk_shape=(18,)
        )
        writer.add_field(
            "cube", cube, codec="zfp", error_bound=bound, chunk_shape=(4, 8, 8)
        )
        writer.add_field(
            "ragged", ragged, codec="zfp", error_bound=bound, chunk_shape=(13, 19)
        )


def snapshot_expectations(path: Path) -> None:
    """Record the archive's decoded fields and raw manifest bytes."""
    from repro.store import ArchiveReader
    from repro.store.manifest import read_manifest

    with ArchiveReader(path) as reader:
        arrays = {name: reader.read_field(name) for name in reader.names}
    np.savez_compressed(path.with_suffix(".expected.npz"), **arrays)
    with open(path, "rb") as fh:
        fh.seek(0, 2)
        size = fh.tell()
        fh.seek(size - struct.calcsize("<QQI4s"))
        offset, length, _, _ = struct.unpack("<QQI4s", fh.read())
        fh.seek(offset)
        manifest_bytes = fh.read(length)
    # sanity: what we snapshot must be exactly what the reader parsed
    with open(path, "rb") as fh:
        read_manifest(fh)
    path.with_suffix(".manifest.json").write_bytes(manifest_bytes)


BUILDERS = {
    "v1-huffman": build_v1_huffman,
    "hfv2": build_hfv2,
    "mixed-codec": build_mixed_codec,
    "timeseries": build_timeseries,
    "sz-hybrid": build_sz_hybrid,
    "zfp-progressive": build_zfp_progressive,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        choices=sorted(BUILDERS),
        help="regenerate a single fixture, leaving the others untouched",
    )
    args = parser.parse_args(argv)
    stems = [args.only] if args.only else list(BUILDERS)
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for stem in stems:
        path = GOLDEN_DIR / f"{stem}.xfa"
        BUILDERS[stem](path)
        snapshot_expectations(path)
        size = path.stat().st_size
        print(f"{path.relative_to(REPO_ROOT)}: {size} bytes")
    print(f"golden fixtures written to {GOLDEN_DIR.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
