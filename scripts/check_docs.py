#!/usr/bin/env python
"""Check that the fenced code blocks in README.md and docs/ stay valid.

Documentation rots when nobody executes it.  This script walks every fenced
code block of the given Markdown files (default: ``README.md`` and
``docs/*.md``) and enforces, per language tag:

- ```` ```json ````          — must parse as JSON.
- ```` ```json config ````   — must parse *and* validate as a
  :class:`repro.pipeline.PipelineConfig` (the docs' config examples are real).
- ```` ```python ````        — must compile (syntax and nothing else; used for
  illustrative snippets that depend on surrounding context).
- ```` ```python run ````    — compiled **and executed** in a fresh namespace
  with a temporary working directory, so examples that claim to run, run.
- anything else (``bash``, ``text``, no tag) — skipped.

Run from the repository root (CI does)::

    PYTHONPATH=src python scripts/check_docs.py [files...]

Exit code 0 when every block passes, 1 otherwise; failures are reported as
``file:line: message`` for the opening fence of the offending block.
``tests/test_docs_examples.py`` runs the same checks under pytest so the
tier-1 suite catches doc rot too.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import traceback
from pathlib import Path
from typing import List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: (info-string, code, line number of the opening fence)
Block = Tuple[str, str, int]


def extract_blocks(text: str) -> List[Block]:
    """Collect every fenced code block with its info string and line number."""
    blocks: List[Block] = []
    lines = text.splitlines()
    in_block = False
    info = ""
    start = 0
    buffer: List[str] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_block and stripped.startswith("```") and stripped != "```":
            in_block, info, start, buffer = True, stripped[3:].strip().lower(), number, []
        elif not in_block and stripped == "```":
            # opening fence with no info string (untagged block)
            in_block, info, start, buffer = True, "", number, []
        elif in_block and stripped == "```":
            blocks.append((info, "\n".join(buffer), start))
            in_block = False
        elif in_block:
            buffer.append(line)
    return blocks


def check_block(info: str, code: str, path: Path, lineno: int) -> Optional[str]:
    """Return an error message for one block, or ``None`` when it passes."""
    where = f"{path}:{lineno}"
    tags = info.split()
    language = tags[0] if tags else ""

    if language == "json":
        try:
            payload = json.loads(code)
        except json.JSONDecodeError as exc:
            return f"{where}: invalid JSON: {exc}"
        if "config" in tags[1:]:
            from repro.pipeline import PipelineConfig, PipelineConfigError

            try:
                PipelineConfig.from_dict(payload)
            except PipelineConfigError as exc:
                return f"{where}: JSON does not validate as a PipelineConfig: {exc}"
        return None

    if language == "python":
        try:
            compiled = compile(code, f"{path.name}:{lineno}", "exec")
        except SyntaxError as exc:
            return f"{where}: python block does not compile: {exc}"
        if "run" not in tags[1:]:
            return None
        cwd = os.getcwd()
        with tempfile.TemporaryDirectory() as tmp:
            os.chdir(tmp)
            try:
                exec(compiled, {"__name__": "__docs_check__"})
            except SystemExit as exc:
                # a doc block using the sys.exit(main()) idiom is fine when it
                # exits 0; KeyboardInterrupt propagates and aborts the checker
                if exc.code not in (0, None):
                    return f"{where}: python block exited with code {exc.code}"
            except Exception:
                return f"{where}: python block failed to run:\n{traceback.format_exc()}"
            finally:
                os.chdir(cwd)
        return None

    return None  # bash / text / untagged blocks are illustrative


def check_file(path: Path) -> Tuple[int, List[str]]:
    """Check one Markdown file; returns ``(blocks_checked, errors)``."""
    errors: List[str] = []
    checked = 0
    blocks = extract_blocks(path.read_text(encoding="utf-8"))
    for info, code, lineno in blocks:
        language = info.split()[0] if info.split() else ""
        if language not in ("json", "python"):
            continue
        checked += 1
        error = check_block(info, code, path, lineno)
        if error is not None:
            errors.append(error)
    return checked, errors


def default_targets() -> List[Path]:
    """README.md plus every Markdown file under docs/."""
    targets = [REPO_ROOT / "README.md"]
    targets.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [p for p in targets if p.exists()]


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    argv = list(argv) if argv is not None else sys.argv[1:]
    targets = [Path(a) for a in argv] if argv else default_targets()
    all_errors: List[str] = []
    total = 0
    for path in targets:
        if not path.exists():
            all_errors.append(f"{path}: no such file")
            continue
        checked, errors = check_file(path)
        total += checked
        status = "ok" if not errors else f"{len(errors)} FAILED"
        print(f"{path}: {checked} block(s) checked, {status}")
        all_errors.extend(errors)
    for error in all_errors:
        print(f"error: {error}", file=sys.stderr)
    print(f"docs check: {total} block(s), {len(all_errors)} error(s)")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
